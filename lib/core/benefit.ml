(* Benefit evaluation (Sections III and VI-C).

   Benefit(x1..xn; W) = Σ_{s∈W} freq_s · ((s_old − s_new) − Σ_i mc(x_i, s))

   s_old / s_new come from the optimizer's Evaluate Indexes mode.  The
   evaluation is made efficient exactly as in the paper:

   - only statements in the union of the configuration's affected sets are
     re-optimized (others cannot change cost);
   - the configuration is partitioned into sub-configurations of indexes with
     overlapping affected sets (indexes in different sub-configurations
     cannot interact);
   - evaluated sub-configurations are cached.

   What-if calls pass the virtual configuration to the optimizer explicitly
   ([~virtual_config]), so an evaluation never mutates the catalog.  That
   makes independent evaluations safe to run concurrently, and this module
   fans them out over domains ([Par.map], up to [t.domains] at a time):
   statement costs within a sub-configuration delta, sub-configuration deltas
   within a benefit, and whole statements in [workload_cost] /
   [used_in_plans].  Results are deterministic — every sum is folded in the
   sequential order over positionally-stable [Par.map] outputs — and the
   sub-configuration cache uses a compute-once discipline (a pending set plus
   a condition variable) so [evaluations] and [cache_hits] also match the
   sequential counts exactly.

   Note: the paper prints the maintenance term outside the frequency product;
   we scale mc by the statement frequency, which is the only reading under
   which repeating an update statement matters. *)

module Catalog = Xia_index.Catalog
module Maintenance = Xia_index.Maintenance
module Optimizer = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Workload = Xia_workload.Workload
module Ast = Xia_query.Ast
module Int_set = Candidate.Int_set

type t = {
  catalog : Catalog.t;
  items : Workload.item array;
  base_costs : float array;       (* per statement, no indexes *)
  base_affected : float array;    (* per statement, estimated documents modified *)
  cache : (string, (float, exn) result) Hashtbl.t;
      (* sub-configuration -> cost delta term, or the exception its
         evaluation raised (re-raised for every later request) *)
  domains : int;                  (* parallelism for what-if fan-out *)
  lock : Mutex.t;                 (* guards cache/pending/counters *)
  cond : Condition.t;             (* signaled when a pending key resolves *)
  pending : (string, unit) Hashtbl.t;  (* keys being computed right now *)
  mutable evaluations : int;      (* optimizer calls made through this evaluator *)
  mutable cache_hits : int;
  mutable useful_memo : (int, unit) Hashtbl.t option;
      (* memoized [useful_ids] result; valid because an evaluator is always
         paired with one candidate set *)
}

let dml_kind = function
  | Ast.Insert _ -> Some Maintenance.Dml_insert
  | Ast.Delete _ -> Some Maintenance.Dml_delete
  | Ast.Update _ -> Some Maintenance.Dml_update
  | Ast.Select _ -> None

let create ?domains catalog (workload : Workload.t) =
  let domains = match domains with Some d -> max 1 d | None -> Par.default_domains () in
  let items = Array.of_list workload in
  (* Force lazy statistics collection for every table up front: afterwards
     concurrent what-if calls only read the catalog. *)
  Catalog.warm_stats catalog;
  let base =
    Par.map ~domains
      (fun (item : Workload.item) ->
        Optimizer.optimize ~mode:Optimizer.Evaluate ~virtual_config:[] catalog
          item.statement)
      items
  in
  {
    catalog;
    items;
    base_costs = Array.map (fun p -> p.Plan.total_cost) base;
    base_affected = Array.map (fun p -> p.Plan.affected_docs) base;
    cache = Hashtbl.create 256;
    domains;
    lock = Mutex.create ();
    cond = Condition.create ();
    pending = Hashtbl.create 8;
    evaluations = Array.length items;
    cache_hits = 0;
    useful_memo = None;
  }

let count_evaluations t n =
  Mutex.lock t.lock;
  t.evaluations <- t.evaluations + n;
  Mutex.unlock t.lock

let base_workload_cost t =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) -> total := !total +. (item.freq *. t.base_costs.(i)))
    t.items;
  !total

(* Cost of the whole workload under a configuration (one Evaluate pass per
   statement; captures all interactions).  Used for final reporting. *)
let workload_cost t (config : Candidate.t list) =
  (* Re-warm in case the store changed since [create]: concurrent [stats]
     reads below must never hit the lazy collection path. *)
  Catalog.warm_stats t.catalog;
  let defs = List.map (fun c -> c.Candidate.def) config in
  let costs =
    Par.map ~domains:t.domains
      (fun (item : Workload.item) ->
        Optimizer.statement_cost ~mode:Optimizer.Evaluate ~virtual_config:defs
          t.catalog item.statement)
      t.items
  in
  count_evaluations t (Array.length t.items);
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) -> total := !total +. (item.freq *. costs.(i)))
    t.items;
  !total

(* Maintenance charge of a configuration: for every DML statement, every
   index of the configuration on the statement's table pays mc. *)
let maintenance_charge t (config : Candidate.t list) =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) ->
      match dml_kind item.statement with
      | None -> ()
      | Some kind ->
          let tables = Ast.tables item.statement in
          List.iter
            (fun (c : Candidate.t) ->
              if List.mem c.def.Xia_index.Index_def.table tables then begin
                let stats = Candidate.stats t.catalog c in
                total :=
                  !total
                  +. item.freq
                     *. Maintenance.cost stats kind ~docs_affected:t.base_affected.(i)
              end)
            config)
    t.items;
  !total

(* Partition a configuration into sub-configurations with overlapping
   affected sets (union-find over candidates). *)
let sub_configurations (config : Candidate.t list) =
  let arr = Array.of_list config in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Int_set.disjoint arr.(i).Candidate.affected arr.(j).Candidate.affected) then
        union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      let r = find i in
      Hashtbl.replace groups r (c :: (Option.value ~default:[] (Hashtbl.find_opt groups r))))
    arr;
  Hashtbl.fold (fun _ g acc -> g :: acc) groups []

let sub_config_key (sub : Candidate.t list) =
  String.concat ";"
    (List.sort String.compare
       (List.map (fun c -> Xia_index.Index_def.logical_key c.Candidate.def) sub))

(* Cost-delta term of one sub-configuration: Σ freq·(s_old − s_new) over its
   affected statements.

   Compute-once cache: concurrent callers asking for the same key block until
   the first caller publishes the result, then count a cache hit — so the
   [evaluations] / [cache_hits] totals are identical to a sequential run.
   Failures are published too: later requests re-raise the cached exception
   without recomputing (and without touching either counter, matching the
   sequential run, where a failed evaluation never publishes anything). *)
let sub_config_delta t (sub : Candidate.t list) =
  let key = sub_config_key sub in
  let rec acquire () =
    (* t.lock held *)
    match Hashtbl.find_opt t.cache key with
    | Some (Ok d) ->
        t.cache_hits <- t.cache_hits + 1;
        `Hit d
    | Some (Error e) ->
        (* A sequential run would recompute and raise again without touching
           either counter (a failed evaluation never publishes), so re-raising
           from the cache counts neither a hit nor any evaluations. *)
        `Raise e
    | None ->
        if Hashtbl.mem t.pending key then begin
          Condition.wait t.cond t.lock;
          acquire ()
        end
        else begin
          Hashtbl.replace t.pending key ();
          `Compute
        end
  in
  Mutex.lock t.lock;
  let decision = acquire () in
  Mutex.unlock t.lock;
  match decision with
  | `Hit d -> d
  | `Raise e -> raise e
  | `Compute ->
      let publish ?(evals = 0) outcome =
        Mutex.lock t.lock;
        Hashtbl.remove t.pending key;
        Hashtbl.replace t.cache key outcome;
        t.evaluations <- t.evaluations + evals;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock
      in
      (try
         let affected =
           List.fold_left
             (fun acc c -> Int_set.union acc c.Candidate.affected)
             Int_set.empty sub
         in
         let defs = List.map (fun c -> c.Candidate.def) sub in
         let stmts =
           List.filter
             (fun i -> i >= 0 && i < Array.length t.items)
             (Int_set.elements affected)
         in
         let costs =
           Par.map_list ~domains:t.domains
             (fun stmt_index ->
               Optimizer.statement_cost ~mode:Optimizer.Evaluate ~virtual_config:defs
                 t.catalog t.items.(stmt_index).Workload.statement)
             stmts
         in
         let delta =
           List.fold_left2
             (fun acc stmt_index cost_new ->
               let item = t.items.(stmt_index) in
               acc +. (item.freq *. (t.base_costs.(stmt_index) -. cost_new)))
             0.0 stmts costs
         in
         publish ~evals:(List.length stmts) (Ok delta);
         delta
       with e ->
         (* Cache the failure: waiters (and any later request for this key)
            re-raise the same exception instead of recomputing. *)
         publish (Error e);
         raise e)

(* The paper's Benefit(x1..xn; W).  Independent sub-configurations are
   evaluated concurrently; the deltas are summed in list order. *)
let benefit t (config : Candidate.t list) =
  match config with
  | [] -> 0.0
  | _ ->
      Catalog.warm_stats t.catalog;
      let subs = sub_configurations config in
      let deltas = Par.map_list ~domains:t.domains (sub_config_delta t) subs in
      let delta = List.fold_left ( +. ) 0.0 deltas in
      delta -. maintenance_charge t config

(* Individual benefit of a single candidate, memoized through the
   sub-configuration cache (a singleton is its own sub-configuration). *)
let individual_benefit t c = benefit t [ c ]

(* Candidates used by at least one optimizer plan when every basic candidate
   of a statement is installed together.  This captures indexes whose value
   only shows in combination (index ANDing): their individual benefit can be
   zero, yet the optimizer picks them alongside a partner.  The paper's
   preprocessing criterion — drop indexes "not being used in optimizer
   plans" — is exactly this check. *)
let used_in_plans t (set : Candidate.set) =
  Catalog.warm_stats t.catalog;
  let basics = Candidate.basics set in
  let per_stmt =
    Par.map ~domains:t.domains
      (fun (stmt_index, (item : Workload.item)) ->
        let config =
          List.filter (fun (c : Candidate.t) -> Int_set.mem stmt_index c.affected) basics
        in
        if config = [] then None
        else
          let defs = List.map (fun (c : Candidate.t) -> c.Candidate.def) config in
          let plan =
            Optimizer.optimize ~mode:Optimizer.Evaluate ~virtual_config:defs
              t.catalog item.statement
          in
          Some (List.map Xia_index.Index_def.logical_key (Plan.indexes_used plan)))
      (Array.mapi (fun i item -> (i, item)) t.items)
  in
  let used = Hashtbl.create 32 in
  let evals = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some keys ->
          incr evals;
          List.iter (fun k -> Hashtbl.replace used k ()) keys)
    per_stmt;
  count_evaluations t !evals;
  used

(* Is this candidate worth keeping in a search space?  Positive individual
   benefit, or used by some plan in combination. *)
let useful_ids t set =
  match t.useful_memo with
  | Some ids -> ids
  | None ->
      let used = used_in_plans t set in
      let cands = Array.of_list (Candidate.to_list set) in
      let indiv = Par.map ~domains:t.domains (individual_benefit t) cands in
      let ids = Hashtbl.create 64 in
      Array.iteri
        (fun i (c : Candidate.t) ->
          if
            indiv.(i) > 0.0
            || Hashtbl.mem used (Xia_index.Index_def.logical_key c.def)
          then Hashtbl.replace ids c.id ())
        cands;
      t.useful_memo <- Some ids;
      ids
