(* Benefit evaluation (Sections III and VI-C).

   Benefit(x1..xn; W) = Σ_{s∈W} freq_s · ((s_old − s_new) − Σ_i mc(x_i, s))

   s_old / s_new come from the optimizer's Evaluate Indexes mode.  The
   evaluation is made efficient exactly as in the paper:

   - only statements in the union of the configuration's affected sets are
     re-optimized (others cannot change cost);
   - the configuration is partitioned into sub-configurations of indexes with
     overlapping affected sets (indexes in different sub-configurations
     cannot interact);
   - evaluated sub-configurations are cached.

   What-if calls pass the virtual configuration to the optimizer explicitly
   ([~virtual_config]), so an evaluation never mutates the catalog.  That
   makes independent evaluations safe to run concurrently, and this module
   fans them out over domains ([Par.map], up to [domains t] at a time):
   statement costs within a sub-configuration delta, sub-configuration deltas
   within a benefit, and whole statements in [workload_cost] /
   [used_in_plans].  Results are deterministic — every sum is folded in the
   sequential order over positionally-stable [Par.map] outputs — and the
   sub-configuration cache uses a compute-once discipline (a pending set plus
   a condition variable) so [evaluations] and [cache_hits] also match the
   sequential counts exactly.

   The sub-configuration cache is sharded (lock-striped): keys are sorted
   arrays of interned logical-index ids (no strings are built or hashed on
   the hot path), each key hashes to one of [shard_count] independent
   {lock, cond, cache, pending} stripes, and the counters are [Atomic]s.
   Concurrent searches under [--domains > 1] therefore stop serializing on
   one global mutex, while the per-key compute-once protocol — and with it
   the counter determinism — is untouched (it only ever needed mutual
   exclusion per key, which the owning shard still provides).

   Note: the paper prints the maintenance term outside the frequency product;
   we scale mc by the statement frequency, which is the only reading under
   which repeating an update statement matters. *)

module Catalog = Xia_index.Catalog
module Maintenance = Xia_index.Maintenance
module Optimizer = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Workload = Xia_workload.Workload
module Ast = Xia_query.Ast
module Int_set = Candidate.Int_set

(* One lock stripe of the sub-configuration cache.  A fingerprint (sorted
   int array of logical ids) always hashes to the same shard, so the
   compute-once protocol runs entirely under the owning shard's lock. *)
type shard = {
  lock : Mutex.t;
  cond : Condition.t;  (* signaled when one of this shard's pending keys resolves *)
  cache : (int array, (float, exn) result) Hashtbl.t;
      (* fingerprint -> cost delta term, or the exception its evaluation
         raised (re-raised for every later request) *)
  pending : (int array, unit) Hashtbl.t;  (* keys being computed right now *)
}

let shard_count = 16

type t = {
  catalog : Catalog.t;
  items : Workload.item array;
  base_costs : float array;       (* per statement, no indexes *)
  base_affected : float array;    (* per statement, estimated documents modified *)
  shards : shard array;
  domains : int;                  (* parallelism for what-if fan-out *)
  evaluations : int Atomic.t;     (* optimizer calls made through this evaluator *)
  cache_hits : int Atomic.t;
  size_memo : (int, int) Xia_xpath.Interner.Cache.t;
      (* candidate id -> derived size in bytes; sound because an evaluator
         is always paired with one candidate set (ids are per-set) *)
  useful_memo : (int, unit) Hashtbl.t option Atomic.t;
      (* memoized [useful_ids] result; same pairing assumption *)
}

(* Observability: cache traffic and shard contention, mirrored into the
   metrics registry when enabled.  The [evaluations]/[cache_hits] fields
   below stay authoritative (and always on) — these counters only exist so a
   [--metrics] snapshot can report them without an evaluator handle. *)
let m_cache_hits = lazy (Xia_obs.Metrics.counter "benefit.cache_hits")
let m_cache_misses = lazy (Xia_obs.Metrics.counter "benefit.cache_misses")
let m_shard_waits = lazy (Xia_obs.Metrics.counter "benefit.shard_waits")
let m_evaluations = lazy (Xia_obs.Metrics.counter "benefit.evaluations")

(* Process-wide running total of sub-configuration cache hits, for the bench
   harness's perf trajectory (per-evaluator counters die with the evaluator). *)
let global_hits = Atomic.make 0

let total_cache_hits () = Atomic.get global_hits

let catalog t = t.catalog
let domains t = t.domains
let evaluations t = Atomic.get t.evaluations
let cache_hits t = Atomic.get t.cache_hits

let cached_sub_configs t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lock;
      let n = Hashtbl.length shard.cache in
      Mutex.unlock shard.lock;
      acc + n)
    0 t.shards

let dml_kind = function
  | Ast.Insert _ -> Some Maintenance.Dml_insert
  | Ast.Delete _ -> Some Maintenance.Dml_delete
  | Ast.Update _ -> Some Maintenance.Dml_update
  | Ast.Select _ -> None

let create ?domains catalog (workload : Workload.t) =
  let domains = match domains with Some d -> max 1 d | None -> Par.default_domains () in
  let items = Array.of_list workload in
  (* Force lazy statistics collection for every table up front: afterwards
     concurrent what-if calls only read the catalog. *)
  Catalog.warm_stats catalog;
  let base =
    Par.map ~domains
      (fun (item : Workload.item) ->
        Optimizer.optimize ~mode:Optimizer.Evaluate ~virtual_config:[] catalog
          item.statement)
      items
  in
  {
    catalog;
    items;
    base_costs = Array.map (fun p -> p.Plan.total_cost) base;
    base_affected = Array.map (fun p -> p.Plan.affected_docs) base;
    shards =
      Array.init shard_count (fun _ ->
          {
            lock = Mutex.create ();
            cond = Condition.create ();
            cache = Hashtbl.create 32;
            pending = Hashtbl.create 4;
          });
    domains;
    evaluations = Atomic.make (Array.length items);
    cache_hits = Atomic.make 0;
    size_memo = Xia_xpath.Interner.Cache.create ~hash:Fun.id ~equal:Int.equal ();
    useful_memo = Atomic.make None;
  }

let count_evaluations t n =
  ignore (Atomic.fetch_and_add t.evaluations n);
  if Xia_obs.Obs.on () then Xia_obs.Metrics.add (Lazy.force m_evaluations) n

let count_hit t =
  Atomic.incr t.cache_hits;
  Atomic.incr global_hits;
  if Xia_obs.Obs.on () then Xia_obs.Metrics.incr (Lazy.force m_cache_hits)

let base_workload_cost t =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) -> total := !total +. (item.freq *. t.base_costs.(i)))
    t.items;
  !total

(* Cost of the whole workload under a configuration (one Evaluate pass per
   statement; captures all interactions).  Used for final reporting. *)
let workload_cost t (config : Candidate.t list) =
  Xia_obs.Trace.with_span "benefit.workload_cost"
    ~args:(fun () ->
      [
        ("config", string_of_int (List.length config));
        ("statements", string_of_int (Array.length t.items));
      ])
  @@ fun () ->
  (* Re-warm in case the store changed since [create]: concurrent [stats]
     reads below must never hit the lazy collection path. *)
  Catalog.warm_stats t.catalog;
  let defs = List.map (fun c -> c.Candidate.def) config in
  let costs =
    Par.map ~domains:t.domains
      (fun (item : Workload.item) ->
        Optimizer.statement_cost ~mode:Optimizer.Evaluate ~virtual_config:defs
          t.catalog item.statement)
      t.items
  in
  count_evaluations t (Array.length t.items);
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) -> total := !total +. (item.freq *. costs.(i)))
    t.items;
  !total

(* Maintenance charge of a configuration: for every DML statement, every
   index of the configuration on the statement's table pays mc. *)
let maintenance_charge t (config : Candidate.t list) =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) ->
      match dml_kind item.statement with
      | None -> ()
      | Some kind ->
          let tables = Ast.tables item.statement in
          List.iter
            (fun (c : Candidate.t) ->
              if List.mem c.def.Xia_index.Index_def.table tables then begin
                let stats = Candidate.stats t.catalog c in
                total :=
                  !total
                  +. item.freq
                     *. Maintenance.cost stats kind ~docs_affected:t.base_affected.(i)
              end)
            config)
    t.items;
  !total

(* Partition a configuration into sub-configurations with overlapping
   affected sets (union-find over candidates). *)
let sub_configurations (config : Candidate.t list) =
  let arr = Array.of_list config in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Int_set.disjoint arr.(i).Candidate.affected arr.(j).Candidate.affected) then
        union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      let r = find i in
      Hashtbl.replace groups r (c :: (Option.value ~default:[] (Hashtbl.find_opt groups r))))
    arr;
  Hashtbl.fold (fun _ g acc -> g :: acc) groups []

(* Fingerprint of a sub-configuration: the sorted array of its members'
   interned logical ids.  Equal configurations (up to order and index names)
   get equal fingerprints; no string is built or hashed. *)
let fingerprint (sub : Candidate.t list) =
  let arr =
    Array.of_list
      (List.map (fun c -> Xia_index.Index_def.logical_id c.Candidate.def) sub)
  in
  Array.sort compare arr;
  arr

let shard_of t fp = t.shards.((Hashtbl.hash fp) land (shard_count - 1))

(* Cost-delta term of one sub-configuration: Σ freq·(s_old − s_new) over its
   affected statements.

   Compute-once cache: concurrent callers asking for the same key block until
   the first caller publishes the result, then count a cache hit — so the
   [evaluations] / [cache_hits] totals are identical to a sequential run.
   Failures are published too: later requests re-raise the cached exception
   without recomputing (and without touching either counter, matching the
   sequential run, where a failed evaluation never publishes anything). *)
let sub_config_delta t (sub : Candidate.t list) =
  let key = fingerprint sub in
  let shard = shard_of t key in
  let rec acquire () =
    (* shard.lock held *)
    match Hashtbl.find_opt shard.cache key with
    | Some (Ok d) ->
        count_hit t;
        `Hit d
    | Some (Error e) ->
        (* A sequential run would recompute and raise again without touching
           either counter (a failed evaluation never publishes), so re-raising
           from the cache counts neither a hit nor any evaluations. *)
        `Raise e
    | None ->
        if Hashtbl.mem shard.pending key then begin
          (* Another domain is computing this key: shard contention. *)
          if Xia_obs.Obs.on () then
            Xia_obs.Metrics.incr (Lazy.force m_shard_waits);
          Condition.wait shard.cond shard.lock;
          acquire ()
        end
        else begin
          Hashtbl.replace shard.pending key ();
          if Xia_obs.Obs.on () then
            Xia_obs.Metrics.incr (Lazy.force m_cache_misses);
          `Compute
        end
  in
  Mutex.lock shard.lock;
  let decision = acquire () in
  Mutex.unlock shard.lock;
  match decision with
  | `Hit d -> d
  | `Raise e -> raise e
  | `Compute ->
      let publish ?(evals = 0) outcome =
        Mutex.lock shard.lock;
        Hashtbl.remove shard.pending key;
        Hashtbl.replace shard.cache key outcome;
        count_evaluations t evals;
        Condition.broadcast shard.cond;
        Mutex.unlock shard.lock
      in
      (try
         let stmt_count = ref 0 in
         let delta =
           Xia_obs.Trace.with_span "benefit.sub_config_delta"
             ~args:(fun () ->
               [
                 ("indexes", string_of_int (List.length sub));
                 ("statements", string_of_int !stmt_count);
               ])
             (fun () ->
               let affected =
                 List.fold_left
                   (fun acc c -> Int_set.union acc c.Candidate.affected)
                   Int_set.empty sub
               in
               let defs = List.map (fun c -> c.Candidate.def) sub in
               let stmts =
                 List.filter
                   (fun i -> i >= 0 && i < Array.length t.items)
                   (Int_set.elements affected)
               in
               stmt_count := List.length stmts;
               let costs =
                 Par.map_list ~domains:t.domains
                   (fun stmt_index ->
                     Optimizer.statement_cost ~mode:Optimizer.Evaluate
                       ~virtual_config:defs t.catalog
                       t.items.(stmt_index).Workload.statement)
                   stmts
               in
               List.fold_left2
                 (fun acc stmt_index cost_new ->
                   let item = t.items.(stmt_index) in
                   acc +. (item.freq *. (t.base_costs.(stmt_index) -. cost_new)))
                 0.0 stmts costs)
         in
         publish ~evals:!stmt_count (Ok delta);
         delta
       with e ->
         (* Cache the failure: waiters (and any later request for this key)
            re-raise the same exception instead of recomputing. *)
         publish (Error e);
         raise e)

(* The paper's Benefit(x1..xn; W).  Independent sub-configurations are
   evaluated concurrently; the deltas are summed in list order. *)
let benefit t (config : Candidate.t list) =
  match config with
  | [] -> 0.0
  | _ ->
      Catalog.warm_stats t.catalog;
      let subs = sub_configurations config in
      let deltas = Par.map_list ~domains:t.domains (sub_config_delta t) subs in
      let delta = List.fold_left ( +. ) 0.0 deltas in
      delta -. maintenance_charge t config

(* Individual benefit of a single candidate, memoized through the
   sub-configuration cache (a singleton is its own sub-configuration). *)
let individual_benefit t c = benefit t [ c ]

(* Derived candidate size, memoized per candidate id: the search algorithms
   recompute catalog-derived sizes inside every density sort and knapsack
   round, and the derivation walk is far from free. *)
let candidate_size t (c : Candidate.t) =
  Xia_xpath.Interner.Cache.find_or_compute t.size_memo c.Candidate.id (fun () ->
      Candidate.size t.catalog c)

let config_size t (config : Candidate.t list) =
  List.fold_left (fun acc c -> acc + candidate_size t c) 0 config

(* Candidates used by at least one optimizer plan when every basic candidate
   of a statement is installed together.  This captures indexes whose value
   only shows in combination (index ANDing): their individual benefit can be
   zero, yet the optimizer picks them alongside a partner.  The paper's
   preprocessing criterion — drop indexes "not being used in optimizer
   plans" — is exactly this check. *)
let used_in_plans t (set : Candidate.set) =
  Catalog.warm_stats t.catalog;
  let basics = Candidate.basics set in
  let per_stmt =
    Par.map ~domains:t.domains
      (fun (stmt_index, (item : Workload.item)) ->
        let config =
          List.filter (fun (c : Candidate.t) -> Int_set.mem stmt_index c.affected) basics
        in
        if config = [] then None
        else
          let defs = List.map (fun (c : Candidate.t) -> c.Candidate.def) config in
          let plan =
            Optimizer.optimize ~mode:Optimizer.Evaluate ~virtual_config:defs
              t.catalog item.statement
          in
          Some (List.map Xia_index.Index_def.logical_id (Plan.indexes_used plan)))
      (Array.mapi (fun i item -> (i, item)) t.items)
  in
  let used = Hashtbl.create 32 in
  let evals = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some ids ->
          incr evals;
          List.iter (fun k -> Hashtbl.replace used k ()) ids)
    per_stmt;
  count_evaluations t !evals;
  used

(* Is this candidate worth keeping in a search space?  Positive individual
   benefit, or used by some plan in combination. *)
let useful_ids t set =
  match Atomic.get t.useful_memo with
  | Some ids -> ids
  | None ->
      let used = used_in_plans t set in
      let cands = Array.of_list (Candidate.to_list set) in
      let indiv = Par.map ~domains:t.domains (individual_benefit t) cands in
      let ids = Hashtbl.create 64 in
      Array.iteri
        (fun i (c : Candidate.t) ->
          if
            indiv.(i) > 0.0
            || Hashtbl.mem used (Xia_index.Index_def.logical_id c.def)
          then Hashtbl.replace ids c.id ())
        cands;
      Atomic.set t.useful_memo (Some ids);
      ids
