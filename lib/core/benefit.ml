(* Benefit evaluation (Sections III and VI-C).

   Benefit(x1..xn; W) = Σ_{s∈W} freq_s · ((s_old − s_new) − Σ_i mc(x_i, s))

   s_old / s_new come from the optimizer's Evaluate Indexes mode.  The
   evaluation is made efficient exactly as in the paper:

   - only statements in the union of the configuration's affected sets are
     re-optimized (others cannot change cost);
   - the configuration is partitioned into sub-configurations of indexes with
     overlapping affected sets (indexes in different sub-configurations
     cannot interact);
   - evaluated sub-configurations are cached.

   What-if calls pass the virtual configuration to the optimizer explicitly
   ([~virtual_config]), so an evaluation never mutates the catalog, and they
   go through [Optimizer.optimize_batch]: ONE optimizer invocation per
   (sub-)configuration plans every statement it needs against a shared
   planning context (virtual-index installation, statistic warming and
   index matching set up once, then fanned out over [domains t] domains).
   Results are deterministic — batch outputs are positional and bit-for-bit
   the per-statement plans, and every sum is folded in sequential order —
   and the sub-configuration cache uses a compute-once discipline (a pending
   set plus a condition variable) so [evaluations] and [cache_hits] also
   match the sequential counts exactly.  [evaluations] counts optimizer
   INVOCATIONS: a batch of any size counts one (the raw per-statement
   equivalent lives in [Optimizer.counters.batch_setup_saved]).

   The sub-configuration cache is sharded (lock-striped): keys are sorted
   arrays of interned logical-index ids (no strings are built or hashed on
   the hot path), each key hashes to one of [shard_count] independent
   {lock, cond, cache, pending} stripes, and the counters are [Atomic]s.
   An entry holds the per-(sub-configuration × statement) costs — not just
   the delta — so any later request over the same fingerprint (another
   search round, a [workload_cost] report over the same configuration)
   skips planning entirely.  Concurrent searches under [--domains > 1]
   therefore stop serializing on one global mutex, while the per-key
   compute-once protocol — and with it the counter determinism — is
   untouched (it only ever needed mutual exclusion per key, which the
   owning shard still provides).

   Note: the paper prints the maintenance term outside the frequency product;
   we scale mc by the statement frequency, which is the only reading under
   which repeating an update statement matters. *)

module Catalog = Xia_index.Catalog
module Maintenance = Xia_index.Maintenance
module Optimizer = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Workload = Xia_workload.Workload
module Ast = Xia_query.Ast
module Rewriter = Xia_query.Rewriter
module Int_set = Candidate.Int_set

(* One cached sub-configuration: the per-statement what-if costs computed so
   far, plus the defs list the first computation used.  [e_defs] is pinned at
   first compute because the planner keeps the FIRST index on an exact cost
   tie — extending the entry under a reordered defs list could flip a
   tie-break and disagree with the cached costs.  [e_costs] is only ever
   read or written under the owning shard's lock once the entry is
   published. *)
type entry = {
  e_defs : Xia_index.Index_def.t list;
  e_costs : (int, float) Hashtbl.t;  (* statement index -> total cost *)
}

(* One lock stripe of the sub-configuration cache.  A fingerprint (sorted
   int array of logical ids) always hashes to the same shard, so the
   compute-once protocol runs entirely under the owning shard's lock. *)
type shard = {
  lock : Mutex.t;
  cond : Condition.t;  (* signaled when one of this shard's pending keys resolves *)
  cache : (int array, (entry, exn) result) Hashtbl.t;
      (* fingerprint -> per-statement costs, or the exception the first
         evaluation raised (re-raised for every later request) *)
  pending : (int array, unit) Hashtbl.t;  (* keys being computed right now *)
}

let shard_count = 16

type t = {
  catalog : Catalog.t;
  summary : Workload_summary.t;
  items : Workload.item array;
      (* the summary's representative statements — for a raw summary,
         exactly the workload *)
  weights : float array;
      (* per representative: the summed frequency of its cluster (for a raw
         summary, the item frequency).  Every cost sum multiplies these, so
         the raw and compressed paths share one code path. *)
  base_costs : float array;       (* per statement, no indexes *)
  base_affected : float array;    (* per statement, estimated documents modified *)
  shards : shard array;
  domains : int;                  (* parallelism for what-if fan-out *)
  evaluations : int Atomic.t;     (* optimizer calls made through this evaluator *)
  cache_hits : int Atomic.t;
  pruned : int Atomic.t;          (* configuration evaluations skipped by bounds *)
  size_memo : (int, int) Xia_xpath.Interner.Cache.t;
      (* candidate id -> derived size in bytes; sound because an evaluator
         is always paired with one candidate set (ids are per-set) *)
  aub_memo : (int, float) Xia_xpath.Interner.Cache.t;
      (* candidate id -> atomic-benefit upper bound; same pairing assumption *)
  floors_memo : float array option Atomic.t;
      (* per-statement cost floors (see [floors]); same pairing assumption *)
  used_memo : (int, unit) Hashtbl.t option Atomic.t;
      (* memoized [used_in_plans] result; same pairing assumption *)
  useful_memo : (int, unit) Hashtbl.t option Atomic.t;
      (* memoized [useful_ids] result; same pairing assumption *)
}

(* Observability: cache traffic and shard contention, mirrored into the
   metrics registry when enabled.  The [evaluations]/[cache_hits] fields
   below stay authoritative (and always on) — these counters only exist so a
   [--metrics] snapshot can report them without an evaluator handle. *)
let m_cache_hits = lazy (Xia_obs.Metrics.counter "benefit.cache_hits")
let m_cache_misses = lazy (Xia_obs.Metrics.counter "benefit.cache_misses")
let m_shard_waits = lazy (Xia_obs.Metrics.counter "benefit.shard_waits")
let m_evaluations = lazy (Xia_obs.Metrics.counter "benefit.evaluations")
let m_pruned = lazy (Xia_obs.Metrics.counter "benefit.pruned_configs")

(* Process-wide running total of sub-configuration cache hits, for the bench
   harness's perf trajectory (per-evaluator counters die with the evaluator). *)
let global_hits = Atomic.make 0

let total_cache_hits () = Atomic.get global_hits

let catalog t = t.catalog
let summary t = t.summary
let domains t = t.domains
let evaluations t = Atomic.get t.evaluations
let cache_hits t = Atomic.get t.cache_hits
let pruned_count t = Atomic.get t.pruned

let cached_sub_configs t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lock;
      let n =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock shard.lock)
          (fun () -> Hashtbl.length shard.cache)
      in
      acc + n)
    0 t.shards

let dml_kind = function
  | Ast.Insert _ -> Some Maintenance.Dml_insert
  | Ast.Delete _ -> Some Maintenance.Dml_delete
  | Ast.Update _ -> Some Maintenance.Dml_update
  | Ast.Select _ -> None

(* Build an evaluator over a workload summary: the per-statement arrays hold
   the cluster REPRESENTATIVES, and [weights] their cluster frequencies, so
   every downstream cost sum is weighted per cluster.  For a raw summary
   (cluster = statement) this is exactly the historical per-item evaluator. *)
let of_summary ?domains catalog summary =
  let domains = match domains with Some d -> max 1 d | None -> Par.default_domains () in
  let items = Array.of_list (Workload_summary.workload summary) in
  (* Force lazy statistics collection for every table up front: afterwards
     concurrent what-if calls only read the catalog. *)
  Catalog.warm_stats catalog;
  let base =
    Optimizer.optimize_batch ~mode:Optimizer.Evaluate ~domains ~virtual_config:[]
      catalog
      (Array.map (fun (item : Workload.item) -> item.statement) items)
  in
  {
    catalog;
    summary;
    items;
    weights = Workload_summary.weights summary;
    base_costs = Array.map (fun p -> p.Plan.total_cost) base;
    base_affected = Array.map (fun p -> p.Plan.affected_docs) base;
    shards =
      Array.init shard_count (fun _ ->
          {
            lock = Mutex.create ();
            cond = Condition.create ();
            cache = Hashtbl.create 32;
            pending = Hashtbl.create 4;
          });
    domains;
    (* one batched invocation costed the whole base workload *)
    evaluations = Atomic.make (if Array.length items = 0 then 0 else 1);
    cache_hits = Atomic.make 0;
    pruned = Atomic.make 0;
    size_memo = Xia_xpath.Interner.Cache.create ~hash:Fun.id ~equal:Int.equal ();
    aub_memo = Xia_xpath.Interner.Cache.create ~hash:Fun.id ~equal:Int.equal ();
    floors_memo = Atomic.make None;
    used_memo = Atomic.make None;
    useful_memo = Atomic.make None;
  }

let create ?domains catalog (workload : Workload.t) =
  of_summary ?domains catalog (Workload_summary.raw workload)

let count_evaluations t n =
  ignore (Atomic.fetch_and_add t.evaluations n);
  if Xia_obs.Obs.on () then Xia_obs.Metrics.add (Lazy.force m_evaluations) n

let count_pruned t n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add t.pruned n);
    if Xia_obs.Obs.on () then Xia_obs.Metrics.add (Lazy.force m_pruned) n
  end

let count_hit t =
  Atomic.incr t.cache_hits;
  Atomic.incr global_hits;
  if Xia_obs.Obs.on () then Xia_obs.Metrics.incr (Lazy.force m_cache_hits)

let base_workload_cost t =
  let total = ref 0.0 in
  Array.iteri
    (fun i _ -> total := !total +. (t.weights.(i) *. t.base_costs.(i)))
    t.items;
  !total

(* Maintenance charge of a configuration: for every DML statement, every
   index of the configuration on the statement's table pays mc. *)
let maintenance_charge t (config : Candidate.t list) =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) ->
      match dml_kind item.statement with
      | None -> ()
      | Some kind ->
          let tables = Ast.tables item.statement in
          List.iter
            (fun (c : Candidate.t) ->
              if List.mem c.def.Xia_index.Index_def.table tables then begin
                let stats = Candidate.stats t.catalog c in
                total :=
                  !total
                  +. t.weights.(i)
                     *. Maintenance.cost stats kind ~docs_affected:t.base_affected.(i)
              end)
            config)
    t.items;
  !total

(* Partition a configuration into sub-configurations with overlapping
   affected sets (union-find over candidates). *)
let sub_configurations (config : Candidate.t list) =
  let arr = Array.of_list config in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Int_set.disjoint arr.(i).Candidate.affected arr.(j).Candidate.affected) then
        union i j
    done
  done;
  (* Emit groups in first-member order: the previous [Hashtbl.fold] let
     hash iteration order pick the fan-out's work-list order, so the same
     configuration could partition into a differently-ordered list across
     runs (lint N001). *)
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i c ->
      let r = find i in
      (match Hashtbl.find_opt groups r with
      | None -> order := r :: !order
      | Some _ -> ());
      Hashtbl.replace groups r (c :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    arr;
  List.rev_map (fun r -> Hashtbl.find groups r) !order

(* Fingerprint of a sub-configuration: the sorted array of its members'
   interned logical ids.  Equal configurations (up to order and index names)
   get equal fingerprints; no string is built or hashed. *)
let fingerprint (sub : Candidate.t list) =
  let arr =
    Array.of_list
      (List.map (fun c -> Xia_index.Index_def.logical_id c.Candidate.def) sub)
  in
  Array.sort compare arr;
  arr

(* Shard selection must digest the WHOLE fingerprint: [Hashtbl.hash] only
   inspects a bounded prefix of an array, so large sub-configurations
   sharing a prefix would all pile onto one stripe.  A full multiplicative
   fold over the ids keeps the distribution flat ([land] with 15 of any
   OCaml int is non-negative, so the index is always in range).  Cache
   semantics are untouched — this only picks which stripe owns a key. *)
let shard_index fp =
  let h = Array.fold_left (fun acc id -> (acc * 31) + id) 17 fp in
  h land (shard_count - 1)

let shard_of t fp = t.shards.(shard_index fp)

(* Per-statement what-if costs of [stmts] (indices into the workload, in the
   caller's order) under the configuration fingerprinted by [key], through
   the sharded compute-once cache.

   - Fully covered request: one cache hit, no planning.
   - Uncovered statements: ONE [Optimizer.optimize_batch] invocation plans
     all of them under the entry's pinned [e_defs] ([defs] when the entry is
     fresh); the new costs are merged under the shard lock, where every
     reader of a published entry also sits.
   - Concurrent requests for the same key block on the shard condition until
     the owner publishes, then re-read — so [evaluations]/[cache_hits] match
     a sequential run exactly.  A fresh entry whose evaluation fails is
     published as [Error] and re-raised by every later request without
     recomputing or recounting; a failed EXTENSION leaves the existing entry
     untouched (its cached costs are still good) and just re-raises. *)
let config_costs t ~defs key stmts =
  let shard = shard_of t key in
  let covered entry = List.for_all (Hashtbl.mem entry.e_costs) stmts in
  let read entry = List.map (Hashtbl.find entry.e_costs) stmts in
  let rec acquire () =
    (* shard.lock held *)
    match Hashtbl.find_opt shard.cache key with
    | Some (Error e) ->
        (* A sequential run would recompute and raise again without touching
           either counter (a failed evaluation never publishes), so
           re-raising from the cache counts neither a hit nor an
           evaluation. *)
        `Raise e
    | Some (Ok entry) when covered entry ->
        count_hit t;
        `Hit (read entry)
    | (Some _ | None) as existing ->
        if Hashtbl.mem shard.pending key then begin
          (* Another domain is computing this key: shard contention. *)
          if Xia_obs.Obs.on () then
            Xia_obs.Metrics.incr (Lazy.force m_shard_waits);
          Condition.wait shard.cond shard.lock;
          acquire ()
        end
        else begin
          Hashtbl.replace shard.pending key ();
          if Xia_obs.Obs.on () then
            Xia_obs.Metrics.incr (Lazy.force m_cache_misses);
          `Compute
            (match existing with
            | Some (Ok entry) -> Some entry
            | Some (Error _) | None -> None)
        end
  in
  Mutex.lock shard.lock;
  let decision =
    Fun.protect ~finally:(fun () -> Mutex.unlock shard.lock) acquire
  in
  match decision with
  | `Hit costs -> costs
  | `Raise e -> raise e
  | `Compute prior ->
      let entry =
        match prior with
        | Some entry -> entry
        | None -> { e_defs = defs; e_costs = Hashtbl.create 16 }
      in
      (* Reading [e_costs] without the lock is safe here: only the pending
         owner — us — may write, and concurrent readers never mutate. *)
      let missing =
        List.filter (fun i -> not (Hashtbl.mem entry.e_costs i)) stmts
      in
      (try
         let plans =
           match missing with
           | [] -> [||]
           | _ ->
               Optimizer.optimize_batch ~mode:Optimizer.Evaluate
                 ~domains:t.domains ~virtual_config:entry.e_defs t.catalog
                 (Array.of_list
                    (List.map (fun i -> t.items.(i).Workload.statement) missing))
         in
         Mutex.lock shard.lock;
         Fun.protect
           ~finally:(fun () ->
             Condition.broadcast shard.cond;
             Mutex.unlock shard.lock)
           (fun () ->
             Hashtbl.remove shard.pending key;
             List.iteri
               (fun k i ->
                 Hashtbl.replace entry.e_costs i plans.(k).Plan.total_cost)
               missing;
             Hashtbl.replace shard.cache key (Ok entry);
             count_evaluations t (match missing with [] -> 0 | _ -> 1);
             read entry)
       with e ->
         Mutex.lock shard.lock;
         Fun.protect
           ~finally:(fun () ->
             Condition.broadcast shard.cond;
             Mutex.unlock shard.lock)
           (fun () ->
             Hashtbl.remove shard.pending key;
             (* Cache the failure of a FRESH entry: waiters (and any later
                request for this key) re-raise instead of recomputing.  An
                existing entry keeps its good costs. *)
             if Option.is_none prior then
               Hashtbl.replace shard.cache key (Error e));
         raise e)

(* Cost of the whole workload under a configuration (one batched Evaluate
   pass over every statement; captures all interactions).  Used for final
   reporting, and routed through the fingerprint cache: reporting twice over
   the same configuration — or over a configuration whose fingerprint a
   search already evaluated in full — skips planning entirely. *)
let workload_cost t (config : Candidate.t list) =
  Xia_obs.Trace.with_span "benefit.workload_cost"
    ~args:(fun () ->
      [
        ("config", string_of_int (List.length config));
        ("statements", string_of_int (Array.length t.items));
      ])
  @@ fun () ->
  if Array.length t.items = 0 then 0.0
  else begin
    (* Re-warm in case the store changed since [create]: concurrent [stats]
       reads below must never hit the lazy collection path. *)
    Catalog.warm_stats t.catalog;
    let defs = List.map (fun c -> c.Candidate.def) config in
    let stmts = List.init (Array.length t.items) Fun.id in
    let costs = config_costs t ~defs (fingerprint config) stmts in
    let total = ref 0.0 in
    List.iteri (fun i cost -> total := !total +. (t.weights.(i) *. cost)) costs;
    !total
  end

(* Cost-delta term of one sub-configuration: Σ freq·(s_old − s_new) over its
   affected statements.  The per-statement costs come from {!config_costs}
   — one batched optimizer invocation on a cache miss, pure lookup on a
   hit. *)
let sub_config_delta t (sub : Candidate.t list) =
  let affected =
    List.fold_left
      (fun acc c -> Int_set.union acc c.Candidate.affected)
      Int_set.empty sub
  in
  let stmts = Int_set.elements affected in
  (* An evaluator is always paired with the candidate set derived from its
     own workload, so every affected index must land inside it.  One outside
     means the caller mixed a stale candidate set with a different workload;
     silently dropping such indices (as this code once did) would undercount
     the delta — fail loudly instead. *)
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length t.items then
        invalid_arg
          (Printf.sprintf
             "Benefit.sub_config_delta: affected statement index %d outside \
              the %d-statement workload (stale candidate set?)"
             i (Array.length t.items)))
    stmts;
  let defs = List.map (fun c -> c.Candidate.def) sub in
  Xia_obs.Trace.with_span "benefit.sub_config_delta"
    ~args:(fun () ->
      [
        ("indexes", string_of_int (List.length sub));
        ("statements", string_of_int (List.length stmts));
      ])
  @@ fun () ->
  let costs = config_costs t ~defs (fingerprint sub) stmts in
  List.fold_left2
    (fun acc stmt_index cost_new ->
      acc +. (t.weights.(stmt_index) *. (t.base_costs.(stmt_index) -. cost_new)))
    0.0 stmts costs

(* The paper's Benefit(x1..xn; W).  Independent sub-configurations are
   evaluated concurrently; [Par.sum_list] combines the deltas with a fixed
   sequential fold, so the sum never depends on scheduling order. *)
let benefit t (config : Candidate.t list) =
  match config with
  | [] -> 0.0
  | _ ->
      Catalog.warm_stats t.catalog;
      let subs = sub_configurations config in
      let delta = Par.sum_list ~domains:t.domains (sub_config_delta t) subs in
      delta -. maintenance_charge t config

(* Individual benefit of a single candidate, memoized through the
   sub-configuration cache (a singleton is its own sub-configuration). *)
let individual_benefit t c = benefit t [ c ]

(* Derived candidate size, memoized per candidate id: the search algorithms
   recompute catalog-derived sizes inside every density sort and knapsack
   round, and the derivation walk is far from free. *)
let candidate_size t (c : Candidate.t) =
  Xia_xpath.Interner.Cache.find_or_compute t.size_memo c.Candidate.id (fun () ->
      Candidate.size t.catalog c)

let config_size t (config : Candidate.t list) =
  List.fold_left (fun acc c -> acc + candidate_size t c) 0 config

(* Per-statement cost FLOORS: statement i's what-if cost under the
   configuration of EVERY candidate that could possibly apply to it — the
   candidates affecting i plus any candidate whose definition matches one of
   i's indexable accesses (cross-coverage: an index can enter a plan of a
   statement outside its affected set once installed alongside others, so
   basics-of-i alone would NOT be a sound floor configuration).  Any real
   configuration's applicable subset for i is contained in that set, the
   planner's cost is monotone non-increasing in the applicable options, and
   the doc-scan fallback is always available, so

       floor_i <= cost_i(config) <= base_i   for every configuration.

   Statements no candidate can touch keep their base cost as the floor.
   Grouped by configuration fingerprint: one batched evaluation per distinct
   group, routed through the sub-configuration cache (so a group whose
   fingerprint a search later evaluates in full is already paid for).
   Memoized per evaluator; computed from the search's main thread before any
   fan-out, so the compute-once note on the memo field holds. *)
let floors t (set : Candidate.set) =
  match Atomic.get t.floors_memo with
  | Some fl -> fl
  | None ->
      Xia_obs.Trace.with_span "benefit.floors"
        ~args:(fun () ->
          [ ("statements", string_of_int (Array.length t.items)) ])
      @@ fun () ->
      Catalog.warm_stats t.catalog;
      let cands = Candidate.to_list set in
      let fl = Array.copy t.base_costs in
      let groups = Hashtbl.create 32 in
      let order = ref [] in  (* fingerprints, reverse first-occurrence order *)
      Array.iteri
        (fun i (item : Workload.item) ->
          let accesses = Rewriter.indexable_accesses item.statement in
          let cfg =
            List.filter
              (fun (c : Candidate.t) ->
                Int_set.mem i c.affected
                || List.exists
                     (fun a -> Optimizer.index_matches c.Candidate.def a)
                     accesses)
              cands
          in
          if cfg <> [] then begin
            let key = fingerprint cfg in
            match Hashtbl.find_opt groups key with
            | Some (_, idxs) -> idxs := i :: !idxs
            | None ->
                order := key :: !order;
                let defs =
                  List.map (fun (c : Candidate.t) -> c.Candidate.def) cfg
                in
                Hashtbl.replace groups key (defs, ref [ i ])
          end)
        t.items;
      List.iter
        (fun key ->
          let defs, idxs = Hashtbl.find groups key in
          let stmts = List.rev !idxs in
          let costs = config_costs t ~defs key stmts in
          List.iter2 (fun i c -> fl.(i) <- c) stmts costs)
        (List.rev !order);
      Atomic.set t.floors_memo (Some fl);
      fl

(* Atomic-benefit upper bound of one candidate:

       aub(c) = Σ_{i ∈ affected(c)} weight_i · (base_i − floor_i)

   Every configuration containing c has per-statement costs >= floor_i, so
   the cost-delta term of ANY evaluation of c — including its individual
   benefit's — is dominated by aub(c); the maintenance charge only
   subtracts.  Hence individual_benefit c <= aub(c) always.

   Sharper: aub(c) = 0 means base_i = floor_i for every affected statement
   (each term is weight·(base − floor) with weight >= 0 and base >= floor,
   so a zero sum forces every term to zero).  The individual-benefit delta
   then folds to exactly +0.0 — each term is either w ·. (x −. x) = +0.0 or
   0.0 ·. nonneg = +0.0, and +0.0 +. +0.0 = +0.0 — so

       individual_benefit c  =  0.0 -. maintenance_charge t [c]   (bitwise)

   which the pruned search paths substitute without an optimizer call. *)
let atomic_upper_bound t (set : Candidate.set) (c : Candidate.t) =
  Xia_xpath.Interner.Cache.find_or_compute t.aub_memo c.Candidate.id (fun () ->
      let fl = floors t set in
      Int_set.fold
        (fun i acc -> acc +. (t.weights.(i) *. (t.base_costs.(i) -. fl.(i))))
        c.Candidate.affected 0.0)

(* Candidates used by at least one optimizer plan when every basic candidate
   of a statement is installed together.  This captures indexes whose value
   only shows in combination (index ANDing): their individual benefit can be
   zero, yet the optimizer picks them alongside a partner.  The paper's
   preprocessing criterion — drop indexes "not being used in optimizer
   plans" — is exactly this check.

   Batched: ONE optimizer invocation plans — under the union of ALL basic
   defs — every statement for which that is provably the same plan as under
   its own basics.  An index only enters a plan by matching an access, so
   the plans coincide exactly when every basic MATCHING one of the
   statement's accesses also AFFECTS it: the filtered applicable lists are
   then literally equal, element order included (both filter the same
   basics-ordered defs list), so no cost or tie-break can differ.
   Statements with cross-coverage — some basic matches an access without
   affecting them, so the union would let a foreign index into their plan —
   fall back to batches over their exact configuration, grouped by
   fingerprint. *)
let compute_used_in_plans t (set : Candidate.set) =
  Catalog.warm_stats t.catalog;
  let basics = Candidate.basics set in
  let all_defs = List.map (fun (c : Candidate.t) -> c.Candidate.def) basics in
  let union_ok = ref [] in          (* statement indices, reverse order *)
  let fallback = ref [] in          (* (fingerprint, defs, indices rev) *)
  Array.iteri
    (fun i (item : Workload.item) ->
      let config =
        List.filter (fun (c : Candidate.t) -> Int_set.mem i c.affected) basics
      in
      if config <> [] then begin
        let accesses = Rewriter.indexable_accesses item.statement in
        let cross =
          List.exists
            (fun (c : Candidate.t) ->
              (not (Int_set.mem i c.affected))
              && List.exists
                   (fun a -> Optimizer.index_matches c.Candidate.def a)
                   accesses)
            basics
        in
        if not cross then union_ok := i :: !union_ok
        else begin
          let key = fingerprint config in
          match List.assoc_opt key !fallback with
          | Some (_, idxs) -> idxs := i :: !idxs
          | None ->
              let defs =
                List.map (fun (c : Candidate.t) -> c.Candidate.def) config
              in
              fallback := (key, (defs, ref [ i ])) :: !fallback
        end
      end)
    t.items;
  let used = Hashtbl.create 32 in
  let batches = ref 0 in
  let plan_group defs idxs =
    let stmts =
      Array.of_list (List.map (fun i -> t.items.(i).Workload.statement) idxs)
    in
    let plans =
      Optimizer.optimize_batch ~mode:Optimizer.Evaluate ~domains:t.domains
        ~virtual_config:defs t.catalog stmts
    in
    incr batches;
    Array.iter
      (fun plan ->
        List.iter
          (fun d -> Hashtbl.replace used (Xia_index.Index_def.logical_id d) ())
          (Plan.indexes_used plan))
      plans
  in
  (match List.rev !union_ok with [] -> () | idxs -> plan_group all_defs idxs);
  (* [fallback] was built by prepending in statement order; restore it so the
     batch sequence — and with it every counter — is deterministic. *)
  List.iter
    (fun (_, (defs, idxs)) -> plan_group defs (List.rev !idxs))
    (List.rev !fallback);
  count_evaluations t !batches;
  used

let used_in_plans t (set : Candidate.set) =
  match Atomic.get t.used_memo with
  | Some used -> used
  | None ->
      let used = compute_used_in_plans t set in
      Atomic.set t.used_memo (Some used);
      used

(* Is this candidate worth keeping in a search space?  Positive individual
   benefit, or used by some plan in combination.

   Plan-used candidates are kept regardless of their probe result (the
   disjunction short-circuits), so their probes are skipped outright — an
   exact optimization, not a heuristic.  Under [prune], candidates with a
   non-positive upper bound are skipped too: their individual benefit is at
   most 0.0 -. maintenance_charge (never > 0), so only plan-usage could keep
   them, and that was already checked.  Either way the result SET is
   identical to probing everything; only the optimizer-call count drops. *)
let useful_ids ?(prune = false) t set =
  match Atomic.get t.useful_memo with
  | Some ids -> ids
  | None ->
      let used = used_in_plans t set in
      let cands = Array.of_list (Candidate.to_list set) in
      let ids = Hashtbl.create 64 in
      let probe =
        List.filter_map
          (fun (c : Candidate.t) ->
            if Hashtbl.mem used (Xia_index.Index_def.logical_id c.def) then begin
              Hashtbl.replace ids c.Candidate.id ();
              None
            end
            else if prune && atomic_upper_bound t set c <= 0.0 then begin
              count_pruned t 1;
              None
            end
            else Some c)
          (Array.to_list cands)
      in
      let rest = Array.of_list probe in
      let indiv = Par.map ~domains:t.domains (individual_benefit t) rest in
      Array.iteri
        (fun i (c : Candidate.t) ->
          if indiv.(i) > 0.0 then Hashtbl.replace ids c.Candidate.id ())
        rest;
      Atomic.set t.useful_memo (Some ids);
      ids
