(** Benefit evaluation with the paper's optimizer-call-minimizing machinery:
    affected sets, sub-configurations and a sub-configuration cache
    (Sections III and VI-C).

    What-if calls pass the virtual configuration to the optimizer explicitly,
    so evaluation never mutates the catalog and independent evaluations run
    concurrently over up to [domains] domains.  Results (and the
    [evaluations] / [cache_hits] counters) are deterministic — identical for
    every [domains] value. *)

module Catalog = Xia_index.Catalog
module Workload = Xia_workload.Workload

type t = {
  catalog : Catalog.t;
  items : Workload.item array;
  base_costs : float array;
  base_affected : float array;
  cache : (string, (float, exn) result) Hashtbl.t;
  domains : int;  (** parallelism for what-if fan-out *)
  lock : Mutex.t;
  cond : Condition.t;
  pending : (string, unit) Hashtbl.t;
  mutable evaluations : int;  (** optimizer calls made through this evaluator *)
  mutable cache_hits : int;
  mutable useful_memo : (int, unit) Hashtbl.t option;
}

(** Build an evaluator: costs every statement once with no indexes.
    [domains] (default [Par.default_domains ()]) bounds the parallel what-if
    fan-out; any value yields bit-for-bit identical results. *)
val create : ?domains:int -> Catalog.t -> Workload.t -> t

(** Frequency-weighted workload cost with no indexes. *)
val base_workload_cost : t -> float

(** Frequency-weighted workload cost under a configuration (full pass, used
    for final reporting). *)
val workload_cost : t -> Candidate.t list -> float

(** Total maintenance charge [Σ freq·mc(x, s)] of a configuration. *)
val maintenance_charge : t -> Candidate.t list -> float

(** Partition into sub-configurations with overlapping affected sets. *)
val sub_configurations : Candidate.t list -> Candidate.t list list

(** The paper's [Benefit(x1..xn; W)]. *)
val benefit : t -> Candidate.t list -> float

val individual_benefit : t -> Candidate.t -> float

(* Logical keys of candidates used by some plan when each statement's basic
   candidates are installed together (captures combination-only value). *)
val used_in_plans : t -> Candidate.set -> (string, unit) Hashtbl.t

(** Ids of candidates worth searching over: positive individual benefit or
    used by some plan in combination (the paper's "not used in optimizer
    plans" pruning criterion, inverted). *)
val useful_ids : t -> Candidate.set -> (int, unit) Hashtbl.t
