(** Benefit evaluation with the paper's optimizer-call-minimizing machinery:
    affected sets, sub-configurations and a sub-configuration cache
    (Sections III and VI-C).

    What-if calls pass the virtual configuration to the optimizer explicitly,
    so evaluation never mutates the catalog and independent evaluations run
    concurrently over up to [domains] domains.  Results (and the
    [evaluations] / [cache_hits] counters) are deterministic — identical for
    every [domains] value.

    The sub-configuration cache is sharded (lock-striped) and keyed by sorted
    arrays of interned logical-index ids, so concurrent searches don't
    serialize on one global mutex and no key strings are built on the hot
    path. *)

module Catalog = Xia_index.Catalog
module Workload = Xia_workload.Workload

type t

(** Build an evaluator: costs every statement once with no indexes (one
    batched optimizer invocation).  [domains] (default
    [Par.default_domains ()]) bounds the parallel what-if fan-out; any value
    yields bit-for-bit identical results.  Equivalent to [of_summary] over
    {!Workload_summary.raw}. *)
val create : ?domains:int -> Catalog.t -> Workload.t -> t

(** Build an evaluator over a workload summary: statements are the summary's
    cluster representatives and every cost sum is weighted by the cluster
    frequencies, so the raw and compressed paths share one code path. *)
val of_summary : ?domains:int -> Catalog.t -> Workload_summary.t -> t

val catalog : t -> Catalog.t

(** The summary this evaluator runs on (identity clusters for {!create}). *)
val summary : t -> Workload_summary.t

(** Parallelism bound for the what-if fan-out. *)
val domains : t -> int

(** Optimizer invocations made through this evaluator.  Every invocation is
    batched ({!Xia_optimizer.Optimizer.optimize_batch}), so a
    (sub-)configuration evaluation counts one however many statements it
    plans; the per-statement raw equivalent is tracked by
    [Optimizer.counters.batch_setup_saved].  Deterministic for any [domains]
    value. *)
val evaluations : t -> int

(** Sub-configuration cache hits of this evaluator. *)
val cache_hits : t -> int

(** Configuration evaluations skipped by upper-bound pruning (probes and
    search steps whose optimistic bound could not beat the incumbent). *)
val pruned_count : t -> int

(** Record [n] pruned evaluations (search algorithms call this when a bound
    lets them skip a probe).  No-op for [n <= 0]. *)
val count_pruned : t -> int -> unit

(** Number of distinct sub-configurations currently cached. *)
val cached_sub_configs : t -> int

(** Process-wide running total of sub-configuration cache hits, across every
    evaluator ever created (bench instrumentation). *)
val total_cache_hits : unit -> int

(** Cache stripe a fingerprint (sorted logical-id array) maps to — a full
    fold over the ids, never a bounded-prefix hash, so fingerprints sharing
    a long prefix still spread over the stripes.  Exposed for the
    distribution regression test. *)
val shard_index : int array -> int

(** Frequency-weighted workload cost with no indexes. *)
val base_workload_cost : t -> float

(** Frequency-weighted workload cost under a configuration (full batched
    pass over every statement, used for final reporting; served from the
    sub-configuration cache when the configuration's fingerprint was already
    evaluated in full). *)
val workload_cost : t -> Candidate.t list -> float

(** Total maintenance charge [Σ freq·mc(x, s)] of a configuration. *)
val maintenance_charge : t -> Candidate.t list -> float

(** Partition into sub-configurations with overlapping affected sets. *)
val sub_configurations : Candidate.t list -> Candidate.t list list

(** The paper's [Benefit(x1..xn; W)].
    @raise Invalid_argument if a candidate's affected set references a
    statement index outside the evaluator's workload — a stale candidate set
    paired with the wrong evaluator (such indices used to be dropped
    silently, undercounting the delta). *)
val benefit : t -> Candidate.t list -> float

val individual_benefit : t -> Candidate.t -> float

(** Derived size in bytes of a candidate's index, memoized per candidate id
    (the statistics derivation walk is pure but not free). *)
val candidate_size : t -> Candidate.t -> int

(** Sum of {!candidate_size} over a configuration. *)
val config_size : t -> Candidate.t list -> int

(** Per-statement cost floors: statement [i]'s what-if cost under every
    candidate that could possibly apply to it, so
    [floors.(i) <= cost_i(config) <= base_i] for EVERY configuration drawn
    from [set].  Memoized per evaluator (one grouped batch pass on first
    use). *)
val floors : t -> Candidate.set -> float array

(** [atomic_upper_bound t set c] dominates [individual_benefit t c]:
    [Σ weight_i·(base_i − floors.(i))] over [c]'s affected statements.  A
    bound of [0.] certifies the individual benefit is exactly
    [0. -. maintenance_charge t [c]] (bit-for-bit), with no optimizer call.
    Memoized per candidate id. *)
val atomic_upper_bound : t -> Candidate.set -> Candidate.t -> float

(* Interned logical ids ({!Xia_index.Index_def.logical_id}) of candidates
   used by some plan when each statement's basic candidates are installed
   together (captures combination-only value).  Memoized per evaluator. *)
val used_in_plans : t -> Candidate.set -> (int, unit) Hashtbl.t

(** Ids of candidates worth searching over: positive individual benefit or
    used by some plan in combination (the paper's "not used in optimizer
    plans" pruning criterion, inverted).  Plan-used candidates are never
    probed (the disjunction short-circuits); with [~prune:true], candidates
    whose {!atomic_upper_bound} is non-positive are skipped too.  The result
    set is identical either way — only the optimizer-call count changes.
    Memoized per evaluator (first caller's [prune] wins the computation). *)
val useful_ids : ?prune:bool -> t -> Candidate.set -> (int, unit) Hashtbl.t
