(** Synthetic workloads of random path queries occurring in the data
    (Section VII-C of the paper). *)

(** One random single-predicate query over a table; [None] when the table has
    no usable paths. *)
val random_query :
  Random.State.t -> Xia_index.Catalog.t -> string -> Xia_query.Ast.statement option

(** [workload catalog tables n]: [n] random queries spread round-robin over
    [tables].  Deterministic for a fixed [seed]. *)
val workload :
  ?seed:int ->
  ?label_prefix:string ->
  Xia_index.Catalog.t ->
  string list ->
  int ->
  Workload.t

(** [skewed_workload ~distinct catalog tables n]: [n] statements Zipf-sampled
    (exponent [alpha], default 1.1) from a pool of [distinct] random
    templates, with rank-decayed statement frequencies — the duplicate-heavy
    regime workload compression targets.  Deterministic for a fixed
    [seed]. *)
val skewed_workload :
  ?seed:int ->
  ?alpha:float ->
  ?label_prefix:string ->
  distinct:int ->
  Xia_index.Catalog.t ->
  string list ->
  int ->
  Workload.t
