(* Synthetic workloads of random path queries, as used in the paper's
   Section VII-C: "we generated synthetic workloads consisting of random
   XPath path expressions that occur in the data".

   Each query picks a random dataguide path of a table and filters on it —
   with a numeric comparison when the path's values are numeric, a string
   equality otherwise.  A fraction of the queries degrade one inner step to a
   wildcard or a descendant axis, which is what gives the generalizer pairs
   with common sub-expressions. *)

module Path_stats = Xia_storage.Path_stats
module Xp = Xia_xpath.Ast

(* Relative steps (below the document root element) of a dataguide path. *)
let rel_components (info : Path_stats.path_info) =
  match info.path with
  | [] | [ _ ] -> None
  | _root :: rest -> Some rest

let step_of_component c =
  if String.length c > 0 && c.[0] = '@' then
    Xia_xpath.Ast.
      { axis = Child; test = Attr (Name (String.sub c 1 (String.length c - 1))); predicates = [] }
  else Xia_xpath.Ast.{ axis = Child; test = Elem (Name c); predicates = [] }

(* Randomly blur one middle step: name test to wildcard, or child axis to
   descendant. *)
let blur rng (steps : Xp.path) =
  let n = List.length steps in
  if n < 2 then steps
  else
    let target = Random.State.int rng (n - 1) in
    List.mapi
      (fun i (s : Xp.step) ->
        if i <> target then s
        else if Random.State.bool rng then
          match s.test with
          | Xp.Elem _ -> { s with test = Xp.Elem Xp.Wildcard }
          | Xp.Attr _ -> { s with test = Xp.Attr Xp.Wildcard }
        else { s with axis = Xp.Descendant })
      steps

let is_numeric_path (info : Path_stats.path_info) =
  info.node_count > 0
  && float_of_int info.numeric_count /. float_of_int info.node_count > 0.9

let predicate_for rng (info : Path_stats.path_info) =
  if is_numeric_path info && info.min_num <= info.max_num then begin
    let x = info.min_num +. Random.State.float rng (Float.max 1e-9 (info.max_num -. info.min_num)) in
    let cmp = if Random.State.bool rng then Xp.Gt else Xp.Lt in
    (cmp, Xp.Number_lit (Float.round (x *. 100.0) /. 100.0))
  end
  else (Xp.Eq, Xp.String_lit (Printf.sprintf "VAL%04d" (Random.State.int rng 10_000)))

(* Build one random query over a table: bind the root element and filter on a
   (possibly blurred) random leaf-ish path. *)
let random_query rng catalog table =
  let stats = Xia_index.Catalog.stats catalog table in
  let eligible =
    List.filter
      (fun (info : Path_stats.path_info) ->
        match rel_components info with
        | Some (_ :: _) -> true
        | Some [] | None -> false)
      stats.Path_stats.ordered
  in
  match eligible with
  | [] -> None
  | _ ->
      let info = List.nth eligible (Random.State.int rng (List.length eligible)) in
      let root =
        (* lint: collected paths are never empty (root component always present) *)
        match info.path with r :: _ -> r | [] -> assert false
      in
      let rel =
        (* lint: eligible paths were filtered to those with relative components *)
        match rel_components info with Some r -> r | None -> assert false
      in
      let rel_steps = blur rng (List.map step_of_component rel) in
      let cmp, lit = predicate_for rng info in
      let source =
        {
          Xia_query.Ast.table;
          column = "XMLDOC";
          path = [ Xia_xpath.Ast.{ axis = Child; test = Elem (Name root); predicates = [] } ];
        }
      in
      let flwor =
        {
          Xia_query.Ast.bindings = [ ("x", source) ];
          where = [ [ { Xia_query.Ast.var = "x"; predicate = Xp.Compare (rel_steps, cmp, lit) } ] ];
          return_ = [ Xia_query.Ast.Ret_var "x" ];
        }
      in
      Some (Xia_query.Ast.Select flwor)

(* [n] random queries spread round-robin over the given tables. *)
let workload ?(seed = 7) ?(label_prefix = "R") catalog tables n =
  let rng = Random.State.make [| seed |] in
  let tables = Array.of_list tables in
  let rec build i acc =
    if i >= n then List.rev acc
    else
      let table = tables.(i mod Array.length tables) in
      match random_query rng catalog table with
      | None -> build (i + 1) acc
      | Some stmt ->
          let it = Workload.item (Printf.sprintf "%s%d" label_prefix (i + 1)) stmt in
          build (i + 1) (it :: acc)
  in
  build 0 []

(* Skewed workload: a pool of [distinct] random templates, then [n]
   statements Zipf-sampled from it (template rank r drawn with probability
   proportional to 1/r^alpha).  This is what production query logs look like
   — a few hot templates dominating a long tail of rare ones — and it is the
   regime workload compression targets: the statement list is long, the
   distinct-signature set is short.  Duplicates are literal (same statement
   value, fresh label), so signature clustering collapses them exactly.
   Statement frequencies additionally carry the template's own base
   frequency skew: hot templates get freq 1.0, the tail keeps a decayed
   weight, exercising the weighted-cost path with non-uniform weights. *)
let skewed_workload ?(seed = 7) ?(alpha = 1.1) ?(label_prefix = "Z") ~distinct
    catalog tables n =
  let rng = Random.State.make [| seed |] in
  let pool =
    Array.of_list (workload ~seed:(seed + 1) ~label_prefix:"T" catalog tables distinct)
  in
  let k = Array.length pool in
  if k = 0 then []
  else begin
    (* Cumulative Zipf mass over ranks 1..k. *)
    let mass = Array.make k 0.0 in
    let total = ref 0.0 in
    Array.iteri
      (fun i _ ->
        total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) alpha);
        mass.(i) <- !total)
      mass;
    let pick () =
      let x = Random.State.float rng !total in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if mass.(mid) < x then search (mid + 1) hi else search lo mid
      in
      search 0 (k - 1)
    in
    List.init n (fun i ->
        let r = pick () in
        let (template : Workload.item) = pool.(r) in
        let freq = 1.0 /. Float.pow (float_of_int (r + 1)) (alpha /. 4.0) in
        {
          Workload.label = Printf.sprintf "%s%d" label_prefix (i + 1);
          statement = template.Workload.statement;
          freq;
        })
  end
