(* The cost-based query optimizer.

   Besides its normal duty (choosing plans over real indexes), it implements
   the two advisor modes the paper adds to DB2:

   - Enumerate Indexes: optimize the statement with a virtual universal index
     ("//*", and "//@*" for attributes) in place and report every query
     pattern the index-matching step matched against it;
   - Evaluate Indexes: cost the statement against the catalog's current
     virtual-index configuration.

   All index statistics — virtual or real — are derived from data statistics,
   so estimated costs are consistent across modes. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Index_stats = Xia_index.Index_stats
module Doc_store = Xia_storage.Doc_store
module Path_stats = Xia_storage.Path_stats
module C = Xia_storage.Cost_params
module Rewriter = Xia_query.Rewriter
module Ast = Xia_query.Ast
module Pattern = Xia_xpath.Pattern
module Par = Xia_par.Par

type mode =
  | Normal    (* real indexes *)
  | Evaluate  (* virtual indexes: the advisor's Evaluate Indexes mode *)

(* Counters are atomic: the advisor's parallel what-if evaluator optimizes
   statements from several domains at once. *)
type counters = {
  optimize_calls : int Atomic.t;
  enumerate_calls : int Atomic.t;
  plans_considered : int Atomic.t;
  batched_calls : int Atomic.t;
  batch_setup_saved : int Atomic.t;
}

let counters =
  { optimize_calls = Atomic.make 0; enumerate_calls = Atomic.make 0;
    plans_considered = Atomic.make 0; batched_calls = Atomic.make 0;
    batch_setup_saved = Atomic.make 0 }

let reset_counters () =
  Atomic.set counters.optimize_calls 0;
  Atomic.set counters.enumerate_calls 0;
  Atomic.set counters.plans_considered 0;
  Atomic.set counters.batched_calls 0;
  Atomic.set counters.batch_setup_saved 0

(* Indexes visible to the optimizer in the given mode.  In [Evaluate] mode
   the virtual configuration is normally passed explicitly ([virtual_config]),
   which is reentrant: no catalog state is touched, so any number of
   evaluations can run concurrently.  Without it we fall back to the
   catalog's legacy mutable virtual-index configuration. *)
let visible_indexes ?virtual_config catalog mode table =
  match mode with
  | Normal ->
      List.map
        (fun pi -> (Xia_index.Physical_index.def pi, false))
        (Catalog.real_indexes catalog table)
  | Evaluate ->
      let defs =
        match virtual_config with
        | Some defs ->
            List.filter (fun (d : Index_def.t) -> String.equal d.table table) defs
        | None -> Catalog.virtual_indexes catalog table
      in
      List.map (fun d -> (d, true)) defs

(* Cost-model perturbation knob for the recommendation-quality evaluation
   harness (lib/eval): every index-plan cost (single scan, index OR, index
   AND) is multiplied by this factor before it competes with the document
   scan.  At the default 1.0 the multiplication is a bitwise no-op
   (IEEE-754: x *. 1.0 = x for every finite x), so plans, costs and every
   committed fixture are unaffected; a large factor makes index plans lose
   every cost comparison, which collapses recommendations to the empty
   configuration — the deliberate quality regression tools/eval_ratchet.sh
   must catch.  Atomic for D001; read on the what-if path, written only by
   the eval CLI before any evaluator exists. *)
let index_cost_factor = Atomic.make 1.0

let perturbed cost = cost *. Atomic.get index_cost_factor

(* Index matching: can this index serve this access?  Same table, same data
   type, and the index pattern covers the access pattern. *)
let index_matches (def : Index_def.t) (access : Rewriter.access) =
  String.equal def.table access.table
  && Index_def.equal_data_type def.dtype access.dtype
  && Pattern.covers ~general:def.pattern ~specific:access.pattern

let avg_doc_pages (tstats : Path_stats.t) =
  if tstats.doc_count = 0 then 1.0
  else
    Float.max 1.0
      (float_of_int tstats.total_bytes
      /. float_of_int tstats.doc_count /. float_of_int C.page_size)

let avg_doc_elements (tstats : Path_stats.t) =
  if tstats.doc_count = 0 then 0.0
  else float_of_int tstats.total_elements /. float_of_int tstats.doc_count

(* Cost of verifying one fetched document against the full binding. *)
let verify_cost_per_doc tstats nfilters =
  (avg_doc_elements tstats *. C.cpu_per_node)
  +. (float_of_int (nfilters + 1) *. C.cpu_per_predicate)

(* Number of elementary predicate evaluations per document. *)
let predicate_count (info : Rewriter.binding_info) =
  List.length (List.concat info.filters)

let doc_scan_cost tstats store (info : Rewriter.binding_info) =
  let docs = float_of_int tstats.Path_stats.doc_count in
  let pages = float_of_int (Doc_store.pages store) in
  (pages *. C.sequential_page_cost)
  +. (docs *. verify_cost_per_doc tstats (predicate_count info))

let index_scan_parts tstats (choice : Plan.index_choice) =
  let s = choice.stats in
  let entries = float_of_int s.Index_stats.entries in
  let est =
    Selectivity.lookup_estimate ~query:choice.access.Rewriter.pattern tstats
      choice.def.Index_def.pattern choice.def.Index_def.dtype
      choice.access.condition
  in
  let entries_scanned = est.Selectivity.entries_matched in
  let leaf_frac = if entries = 0.0 then 0.0 else entries_scanned /. entries in
  let descend = float_of_int s.Index_stats.levels *. C.effective_random_page_cost in
  let leaf_io =
    float_of_int s.Index_stats.leaf_pages *. leaf_frac *. C.sequential_page_cost
  in
  let entry_cpu = entries_scanned *. C.cpu_per_index_entry in
  let docs_fetched = est.Selectivity.docs_matched in
  let lookup = descend +. leaf_io +. entry_cpu in
  (lookup, docs_fetched, Float.min 1.0 (docs_fetched /. Float.max 1.0 (float_of_int tstats.Path_stats.doc_count)))

let fetch_and_verify_cost tstats nfilters docs =
  docs
  *. ((C.effective_random_page_cost *. avg_doc_pages tstats)
     +. verify_cost_per_doc tstats nfilters)

let index_scan_cost tstats (info : Rewriter.binding_info) choice =
  let nfilters = predicate_count info in
  let lookup, docs_fetched, _frac = index_scan_parts tstats choice in
  perturbed (lookup +. fetch_and_verify_cost tstats nfilters docs_fetched)

(* OR filter served by one index per disjunct: union of the probes. *)
let index_or_cost tstats (info : Rewriter.binding_info) choices =
  let nfilters = predicate_count info in
  let docs_cap = Float.max 1.0 (float_of_int tstats.Path_stats.doc_count) in
  let lookups, docs_union =
    List.fold_left
      (fun (lk, du) choice ->
        let lookup, docs_fetched, _ = index_scan_parts tstats choice in
        (lk +. lookup, du +. docs_fetched))
      (0.0, 0.0) choices
  in
  let docs_union = Float.min docs_cap docs_union in
  perturbed (lookups +. fetch_and_verify_cost tstats nfilters docs_union)

let index_and_cost tstats (info : Rewriter.binding_info) choices =
  let nfilters = predicate_count info in
  let docs = Float.max 1.0 (float_of_int tstats.Path_stats.doc_count) in
  let lookups, rid_cpu, inter_frac =
    List.fold_left
      (fun (lk, rc, fr) choice ->
        let lookup, docs_fetched, frac = index_scan_parts tstats choice in
        (lk +. lookup, rc +. (docs_fetched *. C.cpu_per_index_entry), fr *. frac))
      (0.0, 0.0, 1.0) choices
  in
  let inter_docs = docs *. inter_frac in
  perturbed (lookups +. rid_cpu +. fetch_and_verify_cost tstats nfilters inter_docs)

(* Result-size estimate, independent of the access path. *)
let est_result_docs tstats (info : Rewriter.binding_info) =
  float_of_int tstats.Path_stats.doc_count
  *. Selectivity.combined_doc_fraction tstats info.filters

(* Everything the planner reads about one table, assembled once and shared by
   every statement planned against the same (virtual) configuration: data
   statistics, the store handle, and the visible indexes with their derived
   statistics.  [Index_stats.derive_cached] is pure and memoized, so forcing
   it eagerly here changes no number — it only moves the derivation out of
   the per-statement loop, and leaves the environment read-only (safe to
   share across domains; no [Lazy.t] crosses a domain boundary). *)
type table_env = {
  tstats : Path_stats.t;
  store : Doc_store.t;
  indexes : (Index_def.t * bool * Index_stats.t) list;
      (* visible defs in [visible_indexes] order — preserved exactly, because
         [best_choice_for] keeps the first index on an exact cost tie *)
}

let table_env ?virtual_config catalog mode table =
  let tstats = Catalog.stats catalog table in
  {
    tstats;
    store = Catalog.store catalog table;
    indexes =
      List.map
        (fun (def, is_virtual) ->
          (def, is_virtual, Index_stats.derive_cached tstats def))
        (visible_indexes ?virtual_config catalog mode table);
  }

let plan_binding env (info : Rewriter.binding_info) =
  let tstats = env.tstats in
  let est_docs = est_result_docs tstats info in
  let result_cpu = est_docs *. C.cpu_per_result in
  let scan_cost = doc_scan_cost tstats env.store info +. result_cpu in
  Atomic.incr counters.plans_considered;
  (* Best matching index per access. *)
  let best_choice_for (access : Rewriter.access) =
    let applicable =
      List.filter_map
        (fun (def, is_virtual, stats) ->
          if index_matches def access then
            if stats.Index_stats.entries = 0 then None
            else Some { Plan.def; stats; access; is_virtual }
          else None)
        env.indexes
    in
    List.fold_left
      (fun acc c ->
        let cost = index_scan_cost tstats info c in
        Atomic.incr counters.plans_considered;
        match acc with
        | Some (_, best_cost) when best_cost <= cost -> acc
        | Some _ | None -> Some (c, cost))
      None applicable
  in
  (* Per filter: a single index scan for a plain predicate, an index OR (one
     index per disjunct, all required) for a disjunctive one. *)
  let filter_plans =
    List.filter_map
      (fun (filter : Rewriter.filter) ->
        match filter with
        | [] -> None
        | [ access ] ->
            Option.map (fun (c, cost) -> (Plan.Index_scan c, cost)) (best_choice_for access)
        | disjuncts ->
            let choices = List.map best_choice_for disjuncts in
            if List.for_all Option.is_some choices then begin
              let choices = List.map (fun o -> fst (Option.get o)) choices in
              Atomic.incr counters.plans_considered;
              Some (Plan.Index_or choices, index_or_cost tstats info choices)
            end
            else None)
      info.filters
  in
  let single_plans =
    List.map (fun (p, cost) -> (p, cost +. result_cpu)) filter_plans
  in
  (* AND-combinations of the single-scan winners (pairs). *)
  let scan_winners =
    List.filter_map
      (fun (p, _) -> match p with Plan.Index_scan c -> Some c | _ -> None)
      filter_plans
  in
  let rec pairs = function
    | [] -> []
    | c :: rest -> List.map (fun c' -> (c, c')) rest @ pairs rest
  in
  let and_plans =
    List.map
      (fun (c, c') ->
        Atomic.incr counters.plans_considered;
        let cost = index_and_cost tstats info [ c; c' ] +. result_cpu in
        (Plan.Index_and [ c; c' ], cost))
      (pairs scan_winners)
  in
  let all_plans = ((Plan.Doc_scan, scan_cost) :: single_plans) @ and_plans in
  let plan, est_cost =
    List.fold_left
      (fun (bp, bc) (p, c) -> if c < bc then (p, c) else (bp, bc))
      (List.hd all_plans) (List.tl all_plans)
  in
  { Plan.info; plan; est_cost; est_docs }

(* Pure in the document: page-in plus parse CPU.  (An earlier version
   pulled [Catalog.stats] here and ignored it — a shared-state read the
   E002 effect check rightly flagged on the batched what-if path.) *)
let insert_cost doc =
  let bytes = float_of_int (Xia_xml.Types.byte_size doc) in
  let pages = Float.max 1.0 (bytes /. float_of_int C.page_size) in
  (pages *. C.sequential_page_cost)
  +. (float_of_int (Xia_xml.Types.count_elements doc) *. C.cpu_per_node)

let modify_cost_per_doc tstats ~factor =
  (avg_doc_pages tstats *. C.sequential_page_cost *. factor)
  +. (avg_doc_elements tstats *. C.cpu_per_node)

(* Every what-if call's latency, for the advisor's observability layer.
   Lazy so the metric only registers once an instrumented call runs. *)
let optimize_latency =
  lazy (Xia_obs.Metrics.histogram "optimizer.optimize_latency_us")

(* Documents a DML statement modifies, from its locating binding(s).  Every
   binding constrains the same documents, so with several the statement
   touches at most the most selective one's estimate: fold with [min].  (A
   previous version matched [ [ b ] -> b.est_docs | _ -> 0.0 ], silently
   zeroing the modification cost of any multi-binding statement.) *)
let affected_docs_of_bindings = function
  | [] -> 0.0
  | planned ->
      List.fold_left
        (fun acc (b : Plan.planned_binding) -> Float.min acc b.Plan.est_docs)
        infinity planned

(* Plan one statement against prebuilt table environments ([env_of] must
   cover every table the statement touches).  Shared by the per-statement
   and batched entry points — counters are incremented by the callers. *)
let plan_statement ~env_of (stmt : Ast.statement) =
  let bindings = Rewriter.bindings_of_statement stmt in
  let planned =
    List.map
      (fun (info : Rewriter.binding_info) ->
        plan_binding (env_of info.Rewriter.source.Ast.table) info)
      bindings
  in
  let locate_cost = List.fold_left (fun acc b -> acc +. b.Plan.est_cost) 0.0 planned in
  match stmt with
  | Ast.Select _ ->
      { Plan.statement = stmt; bindings = planned; total_cost = locate_cost; affected_docs = 0.0 }
  | Ast.Insert { table = _; document } ->
      let cost = insert_cost document in
      { Plan.statement = stmt; bindings = planned; total_cost = cost; affected_docs = 1.0 }
  | Ast.Delete { table; _ } ->
      let tstats = (env_of table).tstats in
      let affected = affected_docs_of_bindings planned in
      let cost = locate_cost +. (affected *. modify_cost_per_doc tstats ~factor:1.0) in
      { Plan.statement = stmt; bindings = planned; total_cost = cost; affected_docs = affected }
  | Ast.Update { table; _ } ->
      let tstats = (env_of table).tstats in
      let affected = affected_docs_of_bindings planned in
      let cost = locate_cost +. (affected *. modify_cost_per_doc tstats ~factor:2.0) in
      { Plan.statement = stmt; bindings = planned; total_cost = cost; affected_docs = affected }

let do_optimize ?(mode = Evaluate) ?virtual_config catalog (stmt : Ast.statement) =
  Atomic.incr counters.optimize_calls;
  plan_statement stmt
    ~env_of:(fun table -> table_env ?virtual_config catalog mode table)

let optimize ?mode ?virtual_config catalog stmt =
  if not (Xia_obs.Obs.on ()) then do_optimize ?mode ?virtual_config catalog stmt
  else begin
    let t0 = Xia_obs.Obs.now_s () in
    let plan = do_optimize ?mode ?virtual_config catalog stmt in
    Xia_obs.Metrics.observe_s (Lazy.force optimize_latency)
      (Xia_obs.Obs.now_s () -. t0);
    plan
  end

(* Distribution of batch sizes, for the observability layer.  Unitless
   bounds: a sample is a statement count, not a latency. *)
let batch_size_hist =
  lazy
    (Xia_obs.Metrics.histogram
       ~bounds_us:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
       "optimizer.batch_size")

(* The batched what-if entry point (Section VI-C).  One virtual-config
   setup per call: statistics warming and the per-table planning
   environments are built once, then every statement is planned against the
   shared context — fanned out over up to [domains] domains, positionally
   deterministic.  Plans are bit-for-bit what per-statement [optimize] calls
   would return: the environment precomputes exactly what per-statement
   planning derives on the fly (same defs, same order, same memoized index
   statistics), so no cost or tie-break can differ. *)
let optimize_batch ?(mode = Evaluate) ?(domains = 1) ~virtual_config catalog
    (stmts : Ast.statement array) =
  let n = Array.length stmts in
  if n = 0 then [||]
  else begin
    Atomic.incr counters.optimize_calls;
    Atomic.incr counters.batched_calls;
    ignore (Atomic.fetch_and_add counters.batch_setup_saved (n - 1));
    let run () =
      (* Force lazy statistics collection up front: afterwards the parallel
         planners only read the catalog. *)
      Catalog.warm_stats catalog;
      let tables =
        List.sort_uniq String.compare
          (Array.fold_left (fun acc s -> List.rev_append (Ast.tables s) acc) [] stmts)
      in
      let envs =
        List.map (fun t -> (t, table_env ~virtual_config catalog mode t)) tables
      in
      let env_of table = List.assoc table envs in
      Par.map ~domains (plan_statement ~env_of) stmts
    in
    if not (Xia_obs.Obs.on ()) then run ()
    else
      Xia_obs.Trace.with_span "optimizer.batch"
        ~args:(fun () -> [ ("statements", string_of_int n) ])
        (fun () ->
          Xia_obs.Metrics.observe (Lazy.force batch_size_hist) (float_of_int n);
          let t0 = Xia_obs.Obs.now_s () in
          let plans = run () in
          Xia_obs.Metrics.observe_s (Lazy.force optimize_latency)
            (Xia_obs.Obs.now_s () -. t0);
          plans)
  end

let statement_cost ?mode ?virtual_config catalog stmt =
  (optimize ?mode ?virtual_config catalog stmt).Plan.total_cost

(* The Enumerate Indexes mode.  A universal virtual index (for each data type
   and node kind) is put in place for every table the statement touches; the
   index-matching step then reports every access it matches.  The result is
   the statement's basic candidate patterns. *)
let universal_defs table =
  [
    Index_def.make ~name:("__univ_elem_str_" ^ table) ~table ~pattern:Pattern.universal
      ~dtype:Index_def.Dstring ();
    Index_def.make ~name:("__univ_elem_num_" ^ table) ~table ~pattern:Pattern.universal
      ~dtype:Index_def.Ddouble ();
    Index_def.make ~name:("__univ_attr_str_" ^ table) ~table ~pattern:Pattern.universal_attr
      ~dtype:Index_def.Dstring ();
    Index_def.make ~name:("__univ_attr_num_" ^ table) ~table ~pattern:Pattern.universal_attr
      ~dtype:Index_def.Ddouble ();
  ]

let enumerate_indexes _catalog (stmt : Ast.statement) =
  Atomic.incr counters.enumerate_calls;
  let universals = List.concat_map universal_defs (Ast.tables stmt) in
  let accesses = Rewriter.indexable_accesses stmt in
  let matched =
    List.filter
      (fun access -> List.exists (fun def -> index_matches def access) universals)
      accesses
  in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (a : Rewriter.access) ->
      (* Dedup on interned ids; no key string is built. *)
      let key = (Xia_xpath.Interner.label a.table, Pattern.id a.pattern, a.dtype) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (a.table, a.pattern, a.dtype)
      end)
    matched
