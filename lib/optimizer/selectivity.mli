(** Selectivity estimation from path statistics.

    All estimates are per-path mixtures over the dataguide paths a pattern
    covers: each path contributes its own uniform-range or 1/distinct
    fraction weighted by entry count.  This prices general indexes correctly
    (more entries match any condition in a bigger, more mixed population). *)

module Path_stats = Xia_storage.Path_stats
module Index_stats = Xia_index.Index_stats
module Index_def = Xia_index.Index_def

(** Aggregate statistics of a pattern over a table (same derivation as a
    virtual index with that pattern). *)
val pattern_stats :
  Path_stats.t -> Xia_xpath.Pattern.t -> Index_def.data_type -> Index_stats.t

(** Per-path view of the entries an index of a given type stores. *)
type path_view = {
  path : string list;
  entries : int;
  distinct : int;
  docs : int;
  min_num : float;
  max_num : float;
  hist : Xia_storage.Histogram.t option;
}

(** When set (the default), numeric range selectivities use the per-path
    histograms collected by RUNSTATS instead of a uniform-range assumption.
    Exposed for the histogram-accuracy ablation.  Atomic because worker
    domains read it during parallel evaluation; toggle it only between
    evaluations, not while one is in flight. *)
val use_histograms : bool Atomic.t

(** Damping applied to string-equality matches from paths outside the
    predicate's own pattern (string value domains rarely overlap). *)
val cross_path_collision : float

val path_view : Index_def.data_type -> Path_stats.path_info -> path_view

(** Covered paths with at least one typed entry. *)
val path_views :
  Path_stats.t -> Xia_xpath.Pattern.t -> Index_def.data_type -> path_view list

(** Fraction of one path's entries matching a condition. *)
val path_selectivity : path_view -> Xia_query.Rewriter.condition -> float

type lookup_estimate = {
  entries_matched : float;
  docs_matched : float;
  total_entries : float;
}

val empty_estimate : lookup_estimate

(** Expected matches of a condition against the key population of a
    pattern.  [query] is the predicate's own pattern; when given,
    string-equality contributions from paths outside it are damped. *)
val lookup_estimate :
  ?query:Xia_xpath.Pattern.t ->
  Path_stats.t ->
  Xia_xpath.Pattern.t ->
  Index_def.data_type ->
  Xia_query.Rewriter.condition ->
  lookup_estimate

(** Fraction of the table's documents satisfying one access. *)
val doc_fraction : Path_stats.t -> Xia_query.Rewriter.access -> float

(** Fraction of documents satisfying a disjunctive filter. *)
val filter_doc_fraction : Path_stats.t -> Xia_query.Rewriter.access list -> float

(** Product of {!filter_doc_fraction} over the filters (independence). *)
val combined_doc_fraction :
  Path_stats.t -> Xia_query.Rewriter.access list list -> float
