(* Selectivity estimation from path statistics.

   An index's key population is the union of the value distributions of the
   dataguide paths its pattern covers.  Estimating a predicate against the
   aggregate (min/max over everything) would wildly misprice general indexes
   whose paths have very different value ranges, so every estimate here is a
   per-path mixture: each covered path contributes its own uniform-range (or
   1/distinct) fraction, weighted by its entry count.  This preserves the
   property the paper relies on: a general index holds more entries that
   match any given condition, so probing it costs more than probing a
   specific index. *)

module Path_stats = Xia_storage.Path_stats
module Index_stats = Xia_index.Index_stats
module Index_def = Xia_index.Index_def
module Xp = Xia_xpath.Ast

(* Aggregate statistics of an arbitrary pattern over a table, reusing the
   virtual-index derivation (a pattern behaves like an index definition). *)
let pattern_stats stats pattern dtype =
  let def =
    Index_def.make ~name:"__pattern_probe" ~table:stats.Path_stats.table ~pattern ~dtype ()
  in
  Index_stats.derive_cached stats def

(* Per-path view of the entries an index of type [dtype] stores. *)
type path_view = {
  path : string list;
  entries : int;
  distinct : int;
  docs : int;
  min_num : float;
  max_num : float;
  hist : Xia_storage.Histogram.t option;
}

(* Runtime toggle, for the histogram-accuracy ablation bench.  Atomic: it is
   read from every worker domain during a parallel evaluation, and the bench
   flips it between runs. *)
let use_histograms = Atomic.make true

let path_view dtype (info : Path_stats.path_info) =
  match dtype with
  | Index_def.Ddouble ->
      {
        path = info.path;
        entries = info.numeric_count;
        distinct = max 1 info.distinct_numeric;
        docs = info.doc_count;
        min_num = info.min_num;
        max_num = info.max_num;
        hist = info.histogram;
      }
  | Index_def.Dstring ->
      {
        path = info.path;
        entries = info.node_count;
        distinct = max 1 info.distinct_values;
        docs = info.doc_count;
        min_num = info.min_num;
        max_num = info.max_num;
        hist = info.histogram;
      }

let path_views stats pattern dtype =
  List.filter_map
    (fun info ->
      let v = path_view dtype info in
      if v.entries = 0 then None else Some v)
    (Path_stats.matching stats pattern)

(* Probability mass of cross-path string collisions: a string value drawn
   from the predicate's home domain hits an unrelated path's domain with
   probability [cross_path_collision * distinct_foreign / distinct_home]
   (domain-overlap scaled by relative domain size).  String domains of
   distinct paths (symbols vs sectors vs trade dates...) rarely overlap;
   numeric domains genuinely do, so numeric conditions are never damped. *)
let cross_path_collision = 0.05

(* Fraction of one path's entries matching the condition. *)
let path_selectivity (v : path_view) (condition : Xia_query.Rewriter.condition) =
  let eq_fraction = 1.0 /. float_of_int v.distinct in
  let clamp f = Float.max 0.0 (Float.min 1.0 f) in
  match condition with
  | Xia_query.Rewriter.Cexists -> 1.0
  | Xia_query.Rewriter.Ccompare (cmp, lit) -> (
      match cmp, lit with
      | Xp.Eq, Xp.Number_lit x when v.min_num <= v.max_num ->
          (* Numeric equality misses entirely when the value is out of the
             path's range. *)
          if x < v.min_num || x > v.max_num then 0.0 else eq_fraction
      | Xp.Eq, _ -> eq_fraction
      | Xp.Ne, _ -> 1.0 -. eq_fraction
      | (Xp.Lt | Xp.Le | Xp.Gt | Xp.Ge), Xp.Number_lit x ->
          if v.min_num > v.max_num then 1.0 /. 3.0 (* no numeric stats *)
          else if v.max_num <= v.min_num then (
            (* Single-point distribution. *)
            let holds =
              match cmp with
              | Xp.Lt -> v.min_num < x
              | Xp.Le -> v.min_num <= x
              | Xp.Gt -> v.min_num > x
              | Xp.Ge -> v.min_num >= x
              (* lint: range branch — Eq/Ne handled by the equality arm above *)
              | Xp.Eq | Xp.Ne -> assert false
            in
            if holds then 1.0 else 0.0)
          else begin
            let below =
              match v.hist with
              | Some h when Atomic.get use_histograms ->
                  Xia_storage.Histogram.fraction_below h x
              | Some _ | None ->
                  (* uniform-distribution fallback *)
                  clamp ((x -. v.min_num) /. (v.max_num -. v.min_num))
            in
            let f =
              match cmp with
              | Xp.Lt | Xp.Le -> below
              | Xp.Gt | Xp.Ge -> 1.0 -. below
              (* lint: range branch — Eq/Ne handled by the equality arm above *)
              | Xp.Eq | Xp.Ne -> assert false
            in
            (* Within the range, never estimate below one key's share. *)
            if f <= 0.0 then 0.0 else Float.max eq_fraction (clamp f)
          end
      | (Xp.Lt | Xp.Le | Xp.Gt | Xp.Ge), Xp.String_lit _ ->
          (* Lexical range without histograms: the classic 1/3 guess. *)
          1.0 /. 3.0)

type lookup_estimate = {
  entries_matched : float;  (* index entries satisfying the key condition *)
  docs_matched : float;     (* documents with at least one such entry *)
  total_entries : float;    (* size of the key population *)
}

let empty_estimate = { entries_matched = 0.0; docs_matched = 0.0; total_entries = 0.0 }

(* Expected matches of a condition against the key population of [pattern]
   (per-path mixture; documents collapse binomially per path and are clamped
   by the table's document count).  When [query] — the predicate's own
   pattern — is given, string-equality contributions from paths outside the
   query pattern are damped by [cross_path_collision]. *)
let lookup_estimate ?query (stats : Path_stats.t) pattern dtype condition =
  let views = path_views stats pattern dtype in
  let string_eq_cond =
    match condition with
    | Xia_query.Rewriter.Ccompare ((Xp.Eq | Xp.Ne), Xp.String_lit _) -> true
    | Xia_query.Rewriter.Ccompare (_, _) | Xia_query.Rewriter.Cexists -> false
  in
  let is_home v =
    match query with
    | Some q -> Xia_xpath.Pattern.accepts q v.path
    | None -> true
  in
  (* Size of the home domain, for scaling cross-path collision mass. *)
  let home_distinct =
    let d =
      List.fold_left (fun acc v -> if is_home v then acc + v.distinct else acc) 0 views
    in
    max 1 d
  in
  let est =
    List.fold_left
      (fun acc v ->
        let sel =
          if string_eq_cond && not (is_home v) then begin
            match condition with
            | Xia_query.Rewriter.Ccompare (Xp.Ne, _) ->
                (* Ne outside the home path still matches ~everything. *)
                1.0
            | _ ->
                (* Eq: expected foreign hits per entry, uniform over the home
                   domain. *)
                Float.min 1.0 (cross_path_collision /. float_of_int home_distinct)
          end
          else path_selectivity v condition
        in
        let entries = float_of_int v.entries in
        let epd = Float.max 1.0 (entries /. float_of_int (max 1 v.docs)) in
        let docs = float_of_int v.docs *. (1.0 -. ((1.0 -. sel) ** epd)) in
        {
          entries_matched = acc.entries_matched +. (sel *. entries);
          docs_matched = acc.docs_matched +. docs;
          total_entries = acc.total_entries +. entries;
        })
      empty_estimate views
  in
  { est with docs_matched = Float.min est.docs_matched (float_of_int stats.doc_count) }

(* Fraction of the table's documents satisfying one access. *)
let doc_fraction (stats : Path_stats.t) (access : Xia_query.Rewriter.access) =
  if stats.doc_count = 0 then 0.0
  else
    let est = lookup_estimate stats access.pattern access.dtype access.condition in
    Float.min 1.0 (est.docs_matched /. float_of_int stats.doc_count)

(* Fraction of documents satisfying a disjunctive filter (inclusion under
   independence: 1 - prod of misses). *)
let filter_doc_fraction stats (filter : Xia_query.Rewriter.access list) =
  1.0
  -. List.fold_left (fun acc a -> acc *. (1.0 -. doc_fraction stats a)) 1.0 filter

(* Combined fraction of documents satisfying all filters (independence). *)
let combined_doc_fraction stats filters =
  List.fold_left (fun acc f -> acc *. filter_doc_fraction stats f) 1.0 filters
