(* Physical execution of plans.

   Used to measure the paper's "actual speedup": queries really run, either
   by scanning and navigating every document or by probing materialized
   indexes and verifying the fetched documents.  Execution also accumulates a
   simulated I/O figure using the same constants as the cost model, giving a
   hardware-independent view of the work done. *)

module Catalog = Xia_index.Catalog
module Physical_index = Xia_index.Physical_index
module Index_def = Xia_index.Index_def
module Doc_store = Xia_storage.Doc_store
module C = Xia_storage.Cost_params
module Ast = Xia_query.Ast
module Rewriter = Xia_query.Rewriter
module Xp = Xia_xpath.Ast
module Eval = Xia_xpath.Eval

type metrics = {
  mutable docs_scanned : int;
  mutable docs_fetched : int;
  mutable index_entries : int;
  mutable simulated_cost : float;
      (* work actually performed, in cost-model units: I/O for pages touched
         plus CPU for nodes navigated and entries scanned *)
}

let fresh_metrics () =
  { docs_scanned = 0; docs_fetched = 0; index_entries = 0; simulated_cost = 0.0 }

type result = {
  rows : int;
  metrics : metrics;
  wall_seconds : float;
}

let key_of_literal dtype lit =
  match dtype, lit with
  | Index_def.Dstring, Xp.String_lit s -> Some (Physical_index.Kstring s)
  | Index_def.Dstring, Xp.Number_lit f ->
      Some (Physical_index.Kstring (Xia_xpath.Printer.literal_to_string (Xp.Number_lit f)))
  | Index_def.Ddouble, Xp.Number_lit f -> Some (Physical_index.Kdouble f)
  | Index_def.Ddouble, Xp.String_lit s -> (
      match float_of_string_opt s with
      | Some f -> Some (Physical_index.Kdouble f)
      | None -> None)

(* Index entries possibly satisfying the condition (superset: documents are
   verified afterwards). *)
let probe pi (access : Rewriter.access) =
  let dtype = (Physical_index.def pi).Index_def.dtype in
  match access.condition with
  | Rewriter.Cexists -> Physical_index.all pi
  | Rewriter.Ccompare (cmp, lit) -> (
      match key_of_literal dtype lit with
      | None -> Physical_index.all pi
      | Some key -> (
          match cmp with
          | Xp.Eq -> Physical_index.lookup_eq pi key
          | Xp.Ne -> Physical_index.lookup_ne pi key
          | Xp.Lt ->
              Physical_index.lookup_range pi ~lo:Physical_index.Unbounded
                ~hi:(Physical_index.Exclusive key)
          | Xp.Le ->
              Physical_index.lookup_range pi ~lo:Physical_index.Unbounded
                ~hi:(Physical_index.Inclusive key)
          | Xp.Gt ->
              Physical_index.lookup_range pi ~lo:(Physical_index.Exclusive key)
                ~hi:Physical_index.Unbounded
          | Xp.Ge ->
              Physical_index.lookup_range pi ~lo:(Physical_index.Inclusive key)
                ~hi:Physical_index.Unbounded))

(* Bound nodes of a binding within one document, after the where clauses
   (CNF: every group must have at least one satisfied disjunct). *)
let binding_matches (info : Rewriter.binding_info) (where : Ast.where_group list) doc =
  let root = Eval.annotate doc in
  let bound = Eval.eval_elements root info.source.Ast.path in
  let my_groups =
    List.filter
      (fun (group : Ast.where_group) ->
        match group with
        | [] -> false
        | first :: _ -> String.equal first.Ast.var info.var)
      where
  in
  List.filter
    (fun node ->
      List.for_all
        (fun group ->
          List.exists
            (fun (w : Ast.where_clause) -> Eval.predicate_holds_on node w.predicate)
            group)
        my_groups)
    bound

let where_of_statement = function
  | Ast.Select f -> f.where
  | Ast.Insert _ | Ast.Delete _ | Ast.Update _ -> []

(* Find the materialized index backing a plan choice. *)
let physical_for catalog (choice : Plan.index_choice) =
  let table = choice.def.Index_def.table in
  List.find_opt
    (fun pi -> Index_def.same (Physical_index.def pi) choice.def)
    (Catalog.real_indexes catalog table)

let doc_pages doc =
  Float.max 1.0 (float_of_int (Xia_xml.Types.byte_size doc) /. float_of_int C.page_size)

(* CPU charge for navigating one document during verification. *)
let doc_cpu doc nfilters =
  (float_of_int (Xia_xml.Types.count_elements doc) *. C.cpu_per_node)
  +. (float_of_int (nfilters + 1) *. C.cpu_per_predicate)

(* Execute one binding, returning the matching (doc_id, bound nodes) pairs. *)
let run_binding catalog metrics where (b : Plan.planned_binding) =
  let table = b.info.Rewriter.source.Ast.table in
  let store = Catalog.store catalog table in
  let nfilters = List.length b.info.Rewriter.filters in
  let scan_all () =
    metrics.simulated_cost <-
      metrics.simulated_cost
      +. (float_of_int (Doc_store.pages store) *. C.sequential_page_cost);
    Doc_store.fold
      (fun doc_id doc acc ->
        metrics.docs_scanned <- metrics.docs_scanned + 1;
        metrics.simulated_cost <- metrics.simulated_cost +. doc_cpu doc nfilters;
        match binding_matches b.info where doc with
        | [] -> acc
        | nodes -> (doc_id, nodes) :: acc)
      store []
  in
  let fetch_and_verify doc_ids =
    List.filter_map
      (fun doc_id ->
        match Doc_store.find store doc_id with
        | None -> None
        | Some doc ->
            metrics.docs_fetched <- metrics.docs_fetched + 1;
            metrics.simulated_cost <-
              metrics.simulated_cost
              +. (doc_pages doc *. C.effective_random_page_cost)
              +. doc_cpu doc nfilters;
            (match binding_matches b.info where doc with
            | [] -> None
            | nodes -> Some (doc_id, nodes)))
      doc_ids
  in
  let doc_ids_of_entries entries =
    metrics.index_entries <- metrics.index_entries + List.length entries;
    metrics.simulated_cost <-
      metrics.simulated_cost
      +. (float_of_int (List.length entries) *. C.cpu_per_index_entry);
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun (e : Physical_index.entry) ->
        if Hashtbl.mem seen e.doc then None
        else begin
          Hashtbl.add seen e.doc ();
          Some e.doc
        end)
      entries
  in
  let union_of doc_sets =
    let seen = Hashtbl.create 64 in
    List.concat_map
      (fun ids ->
        List.filter
          (fun id ->
            if Hashtbl.mem seen id then false
            else begin
              Hashtbl.add seen id ();
              true
            end)
          ids)
      doc_sets
  in
  match b.plan with
  | Plan.Doc_scan -> scan_all ()
  | Plan.Index_or choices -> (
      let physicals = List.filter_map (physical_for catalog) choices in
      if List.length physicals <> List.length choices then scan_all ()
      else
        let doc_sets =
          List.map2
            (fun pi choice ->
              metrics.simulated_cost <-
                metrics.simulated_cost
                +. (float_of_int choice.Plan.stats.Xia_index.Index_stats.levels
                   *. C.effective_random_page_cost);
              doc_ids_of_entries (probe pi choice.Plan.access))
            physicals choices
        in
        fetch_and_verify (union_of doc_sets))
  | Plan.Index_scan choice -> (
      match physical_for catalog choice with
      | None -> scan_all () (* virtual plan executed without the index *)
      | Some pi ->
          metrics.simulated_cost <-
            metrics.simulated_cost
            +. (float_of_int choice.stats.Xia_index.Index_stats.levels
               *. C.effective_random_page_cost);
          fetch_and_verify (doc_ids_of_entries (probe pi choice.access)))
  | Plan.Index_and choices -> (
      let physicals = List.filter_map (physical_for catalog) choices in
      if List.length physicals <> List.length choices then scan_all ()
      else begin
        let doc_sets =
          List.map2
            (fun pi choice ->
              metrics.simulated_cost <-
                metrics.simulated_cost
                +. (float_of_int choice.Plan.stats.Xia_index.Index_stats.levels
                   *. C.effective_random_page_cost);
              doc_ids_of_entries (probe pi choice.Plan.access))
            physicals choices
        in
        match doc_sets with
        | [] -> []
        | first :: rest ->
            let inter =
              List.fold_left
                (fun acc ids ->
                  let set = Hashtbl.create 64 in
                  List.iter (fun id -> Hashtbl.replace set id ()) ids;
                  List.filter (Hashtbl.mem set) acc)
                first rest
            in
            fetch_and_verify inter
      end)

(* Replace the direct text of the elements matched by [target]. *)
let set_value doc target new_value =
  let root = Eval.annotate doc in
  let hits = Eval.eval_elements root target in
  let hit_set = Hashtbl.create 8 in
  List.iter (fun (n : Eval.anode) -> Hashtbl.replace hit_set n.pre ()) hits;
  let counter = ref 0 in
  let rec rebuild = function
    | Xia_xml.Types.Text _ as t -> t
    | Xia_xml.Types.Element e ->
        let pre = !counter in
        incr counter;
        let children = List.map rebuild e.children in
        if Hashtbl.mem hit_set pre then
          let non_text =
            List.filter
              (fun c -> match c with Xia_xml.Types.Element _ -> true | Xia_xml.Types.Text _ -> false)
              children
          in
          Xia_xml.Types.Element
            { e with children = Xia_xml.Types.Text new_value :: non_text }
        else Xia_xml.Types.Element { e with children }
  in
  rebuild doc

let run_plan catalog (plan : Plan.t) =
  let metrics = fresh_metrics () in
  (* Wall-clock, not [Sys.time]: process CPU time exceeds wall time once the
     advisor evaluates on several domains, which made the field nonsense. *)
  let t0 = Xia_obs.Obs.now_s () in
  let where = where_of_statement plan.Plan.statement in
  let rows =
    match plan.Plan.statement with
    | Ast.Select _ ->
        (* FLWOR without join predicates: result cardinality is the product of
           the per-binding bound-node counts. *)
        List.fold_left
          (fun acc b ->
            let matches = run_binding catalog metrics where b in
            let count =
              List.fold_left (fun n (_, nodes) -> n + List.length nodes) 0 matches
            in
            acc * count)
          1 plan.Plan.bindings
    | Ast.Insert { table; document } ->
        let store = Catalog.store catalog table in
        ignore (Doc_store.insert store document);
        metrics.simulated_cost <-
          metrics.simulated_cost +. (doc_pages document *. C.sequential_page_cost);
        1
    | Ast.Delete { table; _ } ->
        let store = Catalog.store catalog table in
        let victims =
          List.concat_map
            (fun b -> List.map fst (run_binding catalog metrics where b))
            plan.Plan.bindings
        in
        List.iter (fun doc_id -> ignore (Doc_store.delete store doc_id)) victims;
        List.length victims
    | Ast.Update { table; target; new_value; _ } ->
        let store = Catalog.store catalog table in
        let victims =
          List.concat_map
            (fun b -> List.map fst (run_binding catalog metrics where b))
            plan.Plan.bindings
        in
        List.iter
          (fun doc_id ->
            match Doc_store.find store doc_id with
            | None -> ()
            | Some doc ->
                ignore (Doc_store.replace store doc_id (set_value doc target new_value));
                metrics.simulated_cost <-
                  metrics.simulated_cost +. (doc_pages doc *. C.sequential_page_cost))
          victims;
        List.length victims
  in
  { rows; metrics; wall_seconds = Xia_obs.Obs.now_s () -. t0 }

let run_statement catalog stmt =
  Catalog.refresh_indexes catalog;
  let plan = Optimizer.optimize ~mode:Optimizer.Normal catalog stmt in
  run_plan catalog plan
