(** The cost-based query optimizer, including the two advisor modes the paper
    adds to the database server: Enumerate Indexes and Evaluate Indexes. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Ast = Xia_query.Ast
module Pattern = Xia_xpath.Pattern

type mode =
  | Normal    (** plan over real (materialized) indexes *)
  | Evaluate  (** plan over the catalog's virtual-index configuration *)

type counters = {
  optimize_calls : int Atomic.t;
      (** optimizer invocations: one per {!optimize} and one per
          {!optimize_batch} (however many statements the batch plans) *)
  enumerate_calls : int Atomic.t;
  plans_considered : int Atomic.t;
  batched_calls : int Atomic.t;  (** {!optimize_batch} invocations *)
  batch_setup_saved : int Atomic.t;
      (** per-statement setup phases avoided by batching: Σ (batch size − 1).
          [optimize_calls + batch_setup_saved] is the raw-equivalent call
          count the per-statement protocol would have made. *)
}

(** Global optimizer-call accounting (the quantity the paper's Section VI-C
    minimizes).  Atomic: the parallel what-if evaluator optimizes from
    several domains at once. *)
val counters : counters

val reset_counters : unit -> unit

(** Cost-model perturbation knob for the quality-evaluation harness
    ([lib/eval]): every index-plan cost is multiplied by this factor before
    competing with the document scan.  The default [1.0] is a bitwise no-op;
    a large factor makes index plans lose every comparison, collapsing
    recommendations to the empty configuration — the deliberate regression
    [tools/eval_ratchet.sh] must catch.  Test/eval-only: never set it in
    production paths. *)
val index_cost_factor : float Atomic.t

(** Index matching: can [def] serve [access]?  Same table and data type, and
    the index pattern covers the access pattern. *)
val index_matches : Index_def.t -> Xia_query.Rewriter.access -> bool

(** Optimize a statement; default mode is [Evaluate].

    [virtual_config] is the virtual-index configuration for [Evaluate] mode,
    passed explicitly: the call is then reentrant — it touches no catalog
    state, so any number of what-if evaluations (including concurrent ones)
    can be in flight.  When omitted, [Evaluate] mode falls back to the
    catalog's legacy mutable virtual-index configuration
    ([Catalog.set_virtual_indexes]).  [Normal] mode ignores it. *)
val optimize :
  ?mode:mode -> ?virtual_config:Index_def.t list -> Catalog.t -> Ast.statement -> Plan.t

val statement_cost :
  ?mode:mode -> ?virtual_config:Index_def.t list -> Catalog.t -> Ast.statement -> float

(** Batched what-if evaluation: plan every statement of [stmts] against one
    shared planning context — virtual-index installation, catalog statistic
    warming and index-matching setup happen once per call instead of once
    per statement (the paper's Section VI-C lever).  Results are positional
    and bit-for-bit identical to mapping {!optimize} over [stmts] with the
    same [virtual_config]; the internal fan-out over up to [domains]
    (default 1) domains never changes a plan, a cost, or a tie-break.
    Counters: one [optimize_calls], one [batched_calls], and
    [batch_setup_saved += length stmts − 1] per call. *)
val optimize_batch :
  ?mode:mode ->
  ?domains:int ->
  virtual_config:Index_def.t list ->
  Catalog.t ->
  Ast.statement array ->
  Plan.t array

(** Estimated documents a DML statement modifies, derived from its locating
    binding(s): the most selective binding's estimate ([0.] with no locating
    binding).  Exposed for the cost model's regression tests. *)
val affected_docs_of_bindings : Plan.planned_binding list -> float

(** Enumerate Indexes mode: the statement's basic candidate patterns, i.e.
    every access pattern matched against a universal virtual index. *)
val enumerate_indexes :
  Catalog.t -> Ast.statement -> (string * Pattern.t * Index_def.data_type) list
