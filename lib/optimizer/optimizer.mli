(** The cost-based query optimizer, including the two advisor modes the paper
    adds to the database server: Enumerate Indexes and Evaluate Indexes. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Ast = Xia_query.Ast
module Pattern = Xia_xpath.Pattern

type mode =
  | Normal    (** plan over real (materialized) indexes *)
  | Evaluate  (** plan over the catalog's virtual-index configuration *)

type counters = {
  optimize_calls : int Atomic.t;
  enumerate_calls : int Atomic.t;
  plans_considered : int Atomic.t;
}

(** Global optimizer-call accounting (the quantity the paper's Section VI-C
    minimizes).  Atomic: the parallel what-if evaluator optimizes from
    several domains at once. *)
val counters : counters

val reset_counters : unit -> unit

(** Index matching: can [def] serve [access]?  Same table and data type, and
    the index pattern covers the access pattern. *)
val index_matches : Index_def.t -> Xia_query.Rewriter.access -> bool

(** Optimize a statement; default mode is [Evaluate].

    [virtual_config] is the virtual-index configuration for [Evaluate] mode,
    passed explicitly: the call is then reentrant — it touches no catalog
    state, so any number of what-if evaluations (including concurrent ones)
    can be in flight.  When omitted, [Evaluate] mode falls back to the
    catalog's legacy mutable virtual-index configuration
    ([Catalog.set_virtual_indexes]).  [Normal] mode ignores it. *)
val optimize :
  ?mode:mode -> ?virtual_config:Index_def.t list -> Catalog.t -> Ast.statement -> Plan.t

val statement_cost :
  ?mode:mode -> ?virtual_config:Index_def.t list -> Catalog.t -> Ast.statement -> float

(** Enumerate Indexes mode: the statement's basic candidate patterns, i.e.
    every access pattern matched against a universal virtual index. *)
val enumerate_indexes :
  Catalog.t -> Ast.statement -> (string * Pattern.t * Index_def.data_type) list
