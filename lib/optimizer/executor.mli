(** Physical plan execution — used to measure actual (not estimated)
    workload speedups. *)

module Catalog = Xia_index.Catalog
module Ast = Xia_query.Ast

type metrics = {
  mutable docs_scanned : int;   (** documents examined by table scans *)
  mutable docs_fetched : int;   (** documents fetched through indexes *)
  mutable index_entries : int;  (** index entries touched *)
  mutable simulated_cost : float;
  (** work actually performed, in cost-model units: I/O for pages touched plus
      CPU for nodes navigated and index entries scanned *)
}

type result = {
  rows : int;
  metrics : metrics;
  wall_seconds : float;  (** elapsed wall-clock time ([Xia_obs.Obs.now_s]) *)
}

(** Replace the direct text content of the elements matched by the target
    path (element children are preserved). *)
val set_value : Xia_xml.Types.t -> Xia_xpath.Ast.path -> string -> Xia_xml.Types.t

(** Execute a plan.  A virtual index scan whose index is not materialized
    falls back to a document scan. *)
val run_plan : Catalog.t -> Plan.t -> result

(** Refresh stale indexes, optimize in [Normal] mode and execute. *)
val run_statement : Catalog.t -> Ast.statement -> result
