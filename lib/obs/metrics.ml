(* Named metrics: counters, gauges and fixed-bucket latency histograms.

   Metrics are registered once by name (re-registering returns the existing
   instrument; a kind clash is a programming error) and live in a global
   CAS-list registry so [snapshot] can serialize everything.  All state is
   [Atomic], so updates are cheap and safe from any domain.

   Updates at instrumentation sites are gated on [Obs.on ()] by the caller
   (see e.g. lib/core/benefit.ml), keeping the disabled path to one atomic
   load.  The instruments themselves do not check the flag: tests and the
   bench harness update them directly. *)

type kind = Counter | Gauge | Histogram

type counter = int Atomic.t

type gauge = float Atomic.t

(* Cumulative histogram state: [buckets.(i)] counts observations
   <= [bounds.(i)]; the final cell counts overflows.  [sum] accumulates in
   integer microseconds so it can live in an [Atomic.t] without a CAS loop
   on floats. *)
type histogram = {
  bounds : float array;  (* upper bounds, strictly increasing, in us *)
  buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  count : int Atomic.t;
  sum_us : int Atomic.t;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

let kind_of = function
  | I_counter _ -> Counter
  | I_gauge _ -> Gauge
  | I_histogram _ -> Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let registry : (string * instrument) list Atomic.t = Atomic.make []

(* Register-once: the winner of the CAS race publishes [fresh ()]; everyone
   else adopts whatever is already there under that name. *)
let rec intern name fresh =
  let cur = Atomic.get registry in
  match List.assoc_opt name cur with
  | Some existing -> existing
  | None ->
      let inst = fresh () in
      if Atomic.compare_and_set registry cur ((name, inst) :: cur) then inst
      else intern name fresh

let kind_clash name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a %s, requested as a %s"
       name (kind_name got) (kind_name want))

let counter name =
  match intern name (fun () -> I_counter (Atomic.make 0)) with
  | I_counter c -> c
  | other -> kind_clash name Counter (kind_of other)

let gauge name =
  match intern name (fun () -> I_gauge (Atomic.make 0.0)) with
  | I_gauge g -> g
  | other -> kind_clash name Gauge (kind_of other)

(* Default bounds suit what-if optimizer call latencies: 1us .. 1s.  A
   function (not a toplevel array literal) so each histogram owns its copy. *)
let default_bounds () =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 1e5; 1e6 |]

let fresh_histogram bounds () =
  I_histogram
    {
      bounds;
      buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum_us = Atomic.make 0;
    }

let histogram ?bounds_us name =
  let bounds =
    match bounds_us with Some b -> Array.copy b | None -> default_bounds ()
  in
  match intern name (fresh_histogram bounds) with
  | I_histogram h -> h
  | other -> kind_clash name Histogram (kind_of other)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let set g v = Atomic.set g v
let get g = Atomic.get g

let observe_us h us =
  let rec bucket i =
    if i >= Array.length h.bounds then i
    else if us <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  ignore (Atomic.fetch_and_add h.buckets.(bucket 0) 1);
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum_us (int_of_float us))

let observe_s h s = observe_us h (s *. 1e6)
let observe = observe_us

(* ------------------------------------------------------------- snapshot -- *)

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum_us : int; buckets : (float * int) list }
      (* (upper bound in us, cumulative-free bucket count); the overflow
         bucket is reported with bound [infinity] *)

let snapshot () =
  let entries =
    List.map
      (fun (name, inst) ->
        let v =
          (match inst with
          | I_counter c -> Counter_v (Atomic.get c)
          | I_gauge g -> Gauge_v (Atomic.get g)
          | I_histogram h ->
              let buckets =
                List.init
                  (Array.length h.buckets)
                  (fun i ->
                    let bound =
                      if i < Array.length h.bounds then h.bounds.(i)
                      else infinity
                    in
                    (bound, Atomic.get h.buckets.(i)))
              in
              Histogram_v
                {
                  count = Atomic.get h.count;
                  sum_us = Atomic.get h.sum_us;
                  buckets;
                })
        in
        (name, v))
      (Atomic.get registry)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bound_to_json b =
  if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%.0f" b
  else Printf.sprintf "%g" b

(* One JSON object per metric per line, so fixtures can be scrubbed and
   diffed line-by-line. *)
let to_json entries =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      (match v with
      | Counter_v n ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":\"%s\",\"type\":\"counter\",\"value\":%d}"
               (json_escape name) n)
      | Gauge_v g ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":\"%s\",\"type\":\"gauge\",\"value\":%g}"
               (json_escape name) g)
      | Histogram_v { count; sum_us; buckets } ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum_us\":%d,\"buckets\":["
               (json_escape name) count sum_us);
          List.iteri
            (fun j (bound, n) ->
              if j > 0 then Buffer.add_char b ',';
              if Float.is_finite bound then
                Buffer.add_string b
                  (Printf.sprintf "{\"le_us\":%s,\"n\":%d}" (bound_to_json bound) n)
              else Buffer.add_string b (Printf.sprintf "{\"le_us\":\"inf\",\"n\":%d}" n))
            buckets;
          Buffer.add_string b "]}"))
    entries;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Zero every registered instrument (tests and the bench harness isolate
   exhibits with this); registration survives, values reset. *)
let reset_all () =
  List.iter
    (fun (_, inst) ->
      match inst with
      | I_counter c -> Atomic.set c 0
      | I_gauge g -> Atomic.set g 0.0
      | I_histogram h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.count 0;
          Atomic.set h.sum_us 0)
    (Atomic.get registry)
