(** Observability master switch and clock.

    The advisor pipeline is instrumented with {!Trace} spans and {!Metrics}
    updates, all gated on {!enabled}.  With the flag off (the default) the
    instrumentation is a single atomic load per site; with it on, spans and
    metric updates record into per-domain buffers and atomic registers.

    Behavior is identical either way: instrumentation only ever reads the
    clock and bumps observability state, never advisor state.  The
    differential suite in [test/test_obs.ml] locks this in. *)

val enabled : bool Atomic.t
(** The master switch.  Off by default. *)

val on : unit -> bool
(** [on ()] is [Atomic.get enabled]. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** [with_enabled v f] runs [f] with the switch forced to [v], restoring the
    previous state afterwards (exception-safe). *)

val now_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  The only sanctioned clock for
    library code: lint check D004 forbids direct [Unix.gettimeofday] use in
    [lib/] outside [lib/obs/]. *)
