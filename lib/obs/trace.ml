(* Structured tracing: nestable spans with per-domain buffers.

   Each domain records the spans it closes into a domain-local buffer
   ([Domain.DLS]), so tracing adds no cross-domain contention on the hot
   path; [flush] merges every buffer into one chronological list.

   Timestamps are monotonized per domain: every timestamp handed out by a
   buffer is clamped to be >= the previous one from the same buffer.  With
   spans closed strictly LIFO per domain (guaranteed by [with_span]), this
   makes two properties hold by construction, and the property tests in
   test/test_obs.ml check them on the flushed output:

   - well-nestedness: two spans of one domain are either disjoint or one
     contains the other;
   - monotonicity: every span's start is <= its stop, and in buffer (close)
     order stop times never decrease.

   Exporters: Chrome [trace_event] JSON (load in chrome://tracing or
   https://ui.perfetto.dev) and an indented human-readable text tree. *)

type span = {
  name : string;
  args : (string * string) list;
  tid : int;      (* id of the domain that recorded the span *)
  seq : int;      (* per-domain close order *)
  open_seq : int; (* per-domain open order — flush's clock-proof tie-break *)
  depth : int;    (* nesting depth at open time; 0 = toplevel *)
  start_s : float;
  stop_s : float;
}

(* One per domain.  [spans]/[seq] are written by the owning domain under
   [lock] (flush reads them from the flushing domain); [last_ts] and [depth]
   are touched only by the owning domain. *)
type buffer = {
  tid : int;
  lock : Mutex.t;
  mutable last_ts : float;
  mutable seq : int;
  mutable opens : int;
  mutable depth : int;
  mutable spans : span list;  (* reverse close order *)
}

(* Registry of every buffer ever created, for [flush].  Buffers are appended
   with a CAS loop; they are never removed (a domain's buffer outlives its
   batches, and the pool's worker domains live for the whole process). *)
let buffers : buffer list Atomic.t = Atomic.make []

let rec register buf =
  let cur = Atomic.get buffers in
  if not (Atomic.compare_and_set buffers cur (buf :: cur)) then register buf

let key =
  Domain.DLS.new_key (fun () ->
      let buf =
        {
          tid = (Domain.self () :> int);
          lock = Mutex.create ();
          last_ts = 0.0;
          seq = 0;
          opens = 0;
          depth = 0;
          spans = [];
        }
      in
      register buf;
      buf)

let buffer () = Domain.DLS.get key

(* Monotonized clock read: never goes backwards within one buffer. *)
let tick buf =
  let t = Obs.now_s () in
  if t > buf.last_ts then begin
    buf.last_ts <- t;
    t
  end
  else buf.last_ts

let no_args () = []

let record buf span =
  Mutex.lock buf.lock;
  buf.seq <- buf.seq + 1;
  buf.spans <- span :: buf.spans;
  Mutex.unlock buf.lock

let with_span ?(args = no_args) name f =
  if not (Obs.on ()) then f ()
  else begin
    let buf = buffer () in
    let start_s = tick buf in
    let depth = buf.depth in
    buf.depth <- depth + 1;
    let open_seq = buf.opens + 1 in
    buf.opens <- open_seq;
    let finally () =
      buf.depth <- depth;
      let stop_s = tick buf in
      record buf
        { name; args = args (); tid = buf.tid; seq = buf.seq + 1; open_seq;
          depth; start_s; stop_s }
    in
    Fun.protect ~finally f
  end

(* Timing helper shared by the advisor, the CLI, the bench harness and the
   tests (they used to hand-roll gettimeofday pairs): measure [f] and, when
   tracing is on, also record it as a span. *)
let timed ?(args = no_args) name f =
  let t0 = Obs.now_s () in
  let result = with_span ~args name f in
  (result, Obs.now_s () -. t0)

let flush () =
  let drained =
    List.concat_map
      (fun buf ->
        Mutex.lock buf.lock;
        let spans = buf.spans in
        buf.spans <- [];
        Mutex.unlock buf.lock;
        spans)
      (Atomic.get buffers)
  in
  (* Tie-break on open order, not close order: a parent and the child it
     opens within one clock tick share a (monotonized) [start_s], and close
     order would emit the child first on exactly the runs where the tick
     collides — flush order must not depend on clock granularity. *)
  List.sort
    (fun a b ->
      match Float.compare a.start_s b.start_s with
      | 0 -> (
          match compare a.tid b.tid with
          | 0 -> compare a.open_seq b.open_seq
          | c -> c)
      | c -> c)
    drained

(* ------------------------------------------------------------ exporters -- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace_event format: one complete ("ph":"X") event per span, one
   event per line so fixture diffs stay readable.  Timestamps are in
   microseconds, as the format requires. *)
let export_chrome spans =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"xia\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":0,\"tid\":%d"
           (json_escape s.name) (s.start_s *. 1e6)
           ((s.stop_s -. s.start_s) *. 1e6)
           s.tid);
      if s.args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Indented tree per domain, chronological within a domain. *)
let export_text spans =
  let b = Buffer.create 4096 in
  let tids =
    List.sort_uniq compare (List.map (fun (s : span) -> s.tid) spans)
  in
  List.iter
    (fun tid ->
      Buffer.add_string b (Printf.sprintf "domain %d\n" tid);
      List.iter
        (fun (s : span) ->
          if s.tid = tid then begin
            Buffer.add_string b (String.make (2 + (2 * s.depth)) ' ');
            Buffer.add_string b
              (Printf.sprintf "%-40s %10.3f ms" s.name
                 ((s.stop_s -. s.start_s) *. 1e3));
            if s.args <> [] then begin
              Buffer.add_string b "  {";
              List.iteri
                (fun j (k, v) ->
                  if j > 0 then Buffer.add_string b ", ";
                  Buffer.add_string b k;
                  Buffer.add_char b '=';
                  Buffer.add_string b v)
                s.args;
              Buffer.add_char b '}'
            end;
            Buffer.add_char b '\n'
          end)
        spans)
    tids;
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
