(* The observability master switch and the clock.

   Everything in lib/obs is gated on [enabled]: when the flag is off, a span
   is one [Atomic.get] and a metric update is one [Atomic.get] plus a branch,
   so the instrumented hot paths cost the same as uninstrumented ones to
   within noise (measured in EXPERIMENTS.md).

   [now_s] is the only sanctioned wall-clock accessor for library code: the
   lint's D004 check forbids [Unix.gettimeofday] in lib/ outside lib/obs/, so
   every elapsed-time measurement flows through here and tests can reason
   about (and scrub) timestamps in one place. *)

let enabled : bool Atomic.t = Atomic.make false

let on () = Atomic.get enabled

let set_enabled b = Atomic.set enabled b

(* Run [f] with observability forced to [v], restoring the previous state
   even on exceptions (the differential test suite toggles around runs). *)
let with_enabled v f =
  let saved = Atomic.get enabled in
  Atomic.set enabled v;
  Fun.protect ~finally:(fun () -> Atomic.set enabled saved) f

let now_s () = Unix.gettimeofday ()
