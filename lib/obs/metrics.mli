(** Named counters, gauges and fixed-bucket latency histograms.

    Instruments are registered once by name — re-requesting a name returns
    the existing instrument, requesting it with a different kind raises
    [Invalid_argument] — and every registered instrument appears in
    {!snapshot}.  All state is [Atomic]; updates are safe from any domain.

    The instruments themselves are unconditional.  Instrumentation sites in
    the advisor gate their updates on [Obs.on ()] so the disabled path costs
    a single atomic load. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge

val histogram : ?bounds_us:float array -> string -> histogram
(** [histogram name] registers a latency histogram.  [bounds_us] are the
    strictly-increasing bucket upper bounds in microseconds (default spans
    1us – 1s); an implicit overflow bucket is appended.  [bounds_us] is
    ignored when [name] is already registered. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val get : gauge -> float

val observe_us : histogram -> float -> unit
val observe_s : histogram -> float -> unit

val observe : histogram -> float -> unit
(** [observe h v] records a unitless sample (batch sizes, counts): [v] is
    bucketed against the registered bounds as-is.  Pass explicit [bounds_us]
    at registration so the default latency bounds don't misbucket it. *)

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum_us : int; buckets : (float * int) list }
      (** [buckets] pairs each upper bound (us; [infinity] for the overflow
          bucket) with its own count (not cumulative). *)

val snapshot : unit -> (string * snapshot_value) list
(** Every registered metric with its current value, sorted by name. *)

val to_json : (string * snapshot_value) list -> string
(** Serialize a snapshot: one JSON object per metric per line, inside a
    [{"metrics":[...]}] wrapper, so fixtures diff line-by-line. *)

val reset_all : unit -> unit
(** Zero every registered instrument, keeping registrations. *)
