(** Nestable spans with per-domain buffers and monotonized timestamps.

    A span is opened and closed by {!with_span} on the domain that runs the
    traced code; closed spans accumulate in a domain-local buffer and
    {!flush} merges every buffer into one chronological list.  Timestamps
    are clamped per domain so that they never decrease, which makes the
    flushed output well-nested and monotonic by construction (property
    tested in [test/test_obs.ml]).

    All entry points are no-ops while {!Obs.enabled} is off. *)

type span = {
  name : string;
  args : (string * string) list;
  tid : int;  (** id of the domain that recorded the span *)
  seq : int;  (** per-domain close order (1-based) *)
  open_seq : int;
      (** per-domain open order (1-based).  The {!flush} tie-break: two
          same-domain spans can carry the same (monotonized) [start_s] when
          the clock does not advance between opens, and close order would
          put a child before its parent there — open order is the
          chronological order regardless of clock granularity. *)
  depth : int;  (** nesting depth at open time; 0 = toplevel *)
  start_s : float;
  stop_s : float;
}

val with_span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span around it when tracing is
    enabled.  [args] is evaluated once, at span close, and only when tracing
    is enabled — pass a closure over whatever state describes the work.
    Exception-safe: the span closes even if [f] raises. *)

val timed : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a * float
(** [timed name f] is [(f (), elapsed_seconds)], additionally recorded as a
    span when tracing is enabled.  The shared timing helper for bench / CLI /
    test code that needs the duration regardless of tracing state. *)

val flush : unit -> span list
(** Drain every domain's buffer and return all spans sorted by start time
    (ties broken by domain id, then open order — deterministic however
    coarse the clock).  Spans are removed: a second flush returns only
    spans recorded in between. *)

val export_chrome : span list -> string
(** Chrome [trace_event] JSON (one complete event per span, microsecond
    timestamps); load into chrome://tracing or ui.perfetto.dev. *)

val export_text : span list -> string
(** Human-readable per-domain tree, indented by nesting depth. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes [contents] to [path] (truncating). *)
